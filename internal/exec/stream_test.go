package exec

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/expr"
	"repro/internal/sched"
	"repro/internal/storage"
)

// countingSource is a splittable batch source that counts every row it
// hands out through a shared counter — the instrument behind the
// LIMIT-short-circuit assertions: an early-exiting plan must stop
// pulling from its sources after O(limit) rows, at any worker count.
type countingSource struct {
	data        *storage.Batch
	part, parts int
	count       *atomic.Int64

	pos, end int
}

func (s *countingSource) Schema() storage.Schema { return s.data.Schema }

func (s *countingSource) Open() error {
	n := s.data.Len()
	s.pos, s.end = 0, n
	if s.parts > 1 {
		s.pos = s.part * n / s.parts
		s.end = (s.part + 1) * n / s.parts
	}
	return nil
}

func (s *countingSource) Next() (*storage.Batch, error) {
	if s.pos >= s.end {
		return nil, nil
	}
	end := s.pos + storage.BatchSize
	if end > s.end {
		end = s.end
	}
	b := s.data.Slice(s.pos, end)
	s.pos = end
	s.count.Add(int64(b.Len()))
	return b, nil
}

func (s *countingSource) Close() error { return nil }

// streamData builds an n-row batch (id INTEGER, k INTEGER, val DOUBLE)
// with k = id % 50.
func streamData(t *testing.T, n int) *storage.Batch {
	t.Helper()
	b := storage.NewBatch(storage.NewSchema(
		storage.NotNullCol("id", storage.TypeInt64),
		storage.NotNullCol("k", storage.TypeInt64),
		storage.Col("val", storage.TypeFloat64),
	))
	for i := 0; i < n; i++ {
		if err := b.AppendRow(storage.Int64(int64(i)), storage.Int64(int64(i%50)),
			storage.Float64(float64(i)*0.5)); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func alwaysTrue(s storage.Schema) expr.Expr {
	return gt(&expr.ColumnRef{Name: "val", Index: s.IndexOf("val"), Typ: storage.TypeFloat64}, -1)
}

// TestLimitShortCircuitParallelScan asserts that a LIMIT above a
// Gather of scan fragments stops pulling from the source after a
// bounded number of rows: each fragment runs at most gatherBuffer
// batches ahead, so total source reads are O(limit + workers·buffer),
// not O(table).
func TestLimitShortCircuitParallelScan(t *testing.T) {
	const totalBatches = 300
	data := streamData(t, totalBatches*storage.BatchSize)
	for _, workers := range []int{1, 2, 8} {
		var count atomic.Int64
		frags := make([]Operator, workers)
		for i := range frags {
			frags[i] = &Filter{
				Input: &countingSource{data: data, part: i, parts: workers, count: &count},
				Pred:  alwaysTrue(data.Schema),
			}
		}
		lim := &Limit{Input: &Gather{Fragments: frags}, N: 10, Offset: 0}
		got := mustDrain(t, lim)
		if got.Len() != 10 {
			t.Fatalf("workers=%d: got %d rows, want 10", workers, got.Len())
		}
		bound := int64(workers*(gatherBuffer+4)) * storage.BatchSize
		if c := count.Load(); c > bound {
			t.Fatalf("workers=%d: LIMIT 10 pulled %d source rows, want <= %d (total %d)",
				workers, c, bound, data.Len())
		}
	}
}

// TestLimitStreamingHashJoin asserts the streaming probe pulls O(limit)
// rows from the probe side and produces exactly the rows of the
// materialized serial probe.
func TestLimitStreamingHashJoin(t *testing.T) {
	data := streamData(t, 200*storage.BatchSize)
	right := streamData(t, 50) // k column matches ids 0..49
	build := func(streaming bool, count *atomic.Int64) Operator {
		var left Operator = &countingSource{data: data, parts: 1, count: count}
		return &Limit{N: 10, Input: &HashJoin{
			Left: left, Right: &BatchSource{Data: right},
			LeftKeys: []int{1}, RightKeys: []int{0},
			Type: InnerJoin, Streaming: streaming,
		}}
	}
	var scount, mcount atomic.Int64
	got := mustDrain(t, build(true, &scount))
	want := mustDrain(t, build(false, &mcount))
	sameBatches(t, "streaming vs materialized", got, want)
	if got.Len() != 10 {
		t.Fatalf("got %d rows, want 10", got.Len())
	}
	if c := scount.Load(); c > 2*storage.BatchSize {
		t.Fatalf("streaming probe pulled %d rows for LIMIT 10, want <= %d", c, 2*storage.BatchSize)
	}
	if c := mcount.Load(); c != int64(data.Len()) {
		t.Fatalf("materialized probe read %d rows, expected full drain %d", c, data.Len())
	}
}

// TestStreamingJoinFullParity drains streaming and materialized joins
// completely — inner and left, nullable multi-type keys — and demands
// byte-identical results.
func TestStreamingJoinFullParity(t *testing.T) {
	left := testTable(t, "l", 700, 21)
	right := testTable(t, "r", 90, 22)
	for _, jt := range []JoinType{InnerJoin, LeftJoin} {
		build := func(streaming bool) Operator {
			return &HashJoin{
				Left: NewTableScan(left), Right: NewTableScan(right),
				LeftKeys: []int{1}, RightKeys: []int{1}, // grp: nullable key
				Type: jt, Streaming: streaming,
			}
		}
		sameBatches(t, fmt.Sprintf("join type %d", jt),
			mustDrain(t, build(true)), mustDrain(t, build(false)))
	}
}

// TestSpoolStreamsAndBoundsProduction drives a Gather over SpoolParts
// whose base is a counting source: a LIMIT above the Gather must stop
// the spool producer after a bounded overshoot (part 0 streams rows as
// they become certain; the producer blocks past its lead window), and
// a full drain must reproduce the base row for row.
func TestSpoolStreamsAndBoundsProduction(t *testing.T) {
	const totalBatches = 300
	data := streamData(t, totalBatches*storage.BatchSize)
	build := func(parts int, count *atomic.Int64, n int64) Operator {
		sp := &spool{input: &countingSource{data: data, parts: 1, count: count}, parts: parts}
		frags := make([]Operator, parts)
		for i := range frags {
			frags[i] = &Filter{
				Input: &SpoolPart{sp: sp, schema: data.Schema, part: i, parts: parts},
				Pred:  alwaysTrue(data.Schema),
			}
		}
		g := &Gather{Fragments: frags, spools: []*spool{sp}}
		if n > 0 {
			return &Limit{Input: g, N: n}
		}
		return g
	}

	for _, parts := range []int{2, 4, 8} {
		// Early exit: bounded production.
		var count atomic.Int64
		got := mustDrain(t, build(parts, &count, 10))
		if got.Len() != 10 {
			t.Fatalf("parts=%d: got %d rows, want 10", parts, got.Len())
		}
		// Part 0 must see ~limit rows; the base over-produces by the
		// parts factor plus the lead window and channel buffers.
		bound := int64(parts) * int64((gatherBuffer+2)*storage.BatchSize+spoolLeadRows+storage.BatchSize)
		if c := count.Load(); c > bound {
			t.Fatalf("parts=%d: LIMIT 10 made the spool produce %d rows, want <= %d (total %d)",
				parts, c, bound, data.Len())
		}

		// Full drain: row-for-row identical to the base.
		var full atomic.Int64
		sameBatches(t, fmt.Sprintf("parts=%d full drain", parts),
			mustDrain(t, build(parts, &full, 0)), data)
	}
}

// TestLimitUnderAggregate asserts a LIMIT inside an aggregate's input
// (SELECT agg FROM (... LIMIT 10)) bounds source reads: the aggregate
// consumes 10 rows, so the scan reads one batch.
func TestLimitUnderAggregate(t *testing.T) {
	data := streamData(t, 200*storage.BatchSize)
	var count atomic.Int64
	agg := &HashAggregate{
		Input: &Limit{Input: &countingSource{data: data, parts: 1, count: &count}, N: 10},
		GroupBy: []expr.Expr{
			&expr.ColumnRef{Name: "k", Index: 1, Typ: storage.TypeInt64},
		},
		Aggs:  []*expr.Aggregate{{Kind: expr.AggCountStar}},
		Names: []string{"k", "n"},
	}
	got := mustDrain(t, agg)
	if got.Len() != 10 { // ids 0..9 → 10 distinct k values
		t.Fatalf("got %d groups, want 10", got.Len())
	}
	if c := count.Load(); c > 2*storage.BatchSize {
		t.Fatalf("aggregate over LIMIT 10 pulled %d source rows, want <= %d", c, 2*storage.BatchSize)
	}
}

// TestSortParallelMatchesSerial checks the per-morsel parallel sort +
// pairwise merge is byte-identical to the serial stable sort (ties
// carry rows with distinct ids, so instability would reorder them) and
// that sorted output streams in bounded batches.
func TestSortParallelMatchesSerial(t *testing.T) {
	lowMorselRows(t)
	tb := testTable(t, "t", 3000, 31)
	keys := []storage.SortKey{{Col: 1}, {Col: 3, Desc: true}} // grp ASC, tag DESC: many ties
	want := mustDrain(t, &Sort{Input: NewTableScan(tb), Keys: keys})
	for _, workers := range []int{2, 3, 8} {
		s := &Sort{Input: NewTableScan(tb), Keys: keys, Workers: workers}
		if err := s.Open(); err != nil {
			t.Fatal(err)
		}
		got := storage.NewBatch(s.Schema())
		for {
			b, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			if b.Len() > storage.BatchSize {
				t.Fatalf("workers=%d: sort emitted a %d-row batch, want <= %d",
					workers, b.Len(), storage.BatchSize)
			}
			if err := storage.Concat(got, b); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		sameBatches(t, fmt.Sprintf("workers=%d", workers), got, want)
	}
}

// openTracker records when an operator is opened.
type openTracker struct {
	Operator
	opened *bool
}

func (o *openTracker) Open() error {
	*o.opened = true
	return o.Operator.Open()
}

// TestUnionAllOpensInputsLazily asserts input i+1 is not opened until
// input i is exhausted, bounding peak memory when inputs are blocking
// (per-superstep Sorts in the table-union path).
func TestUnionAllOpensInputsLazily(t *testing.T) {
	a := streamData(t, 8)
	b := streamData(t, 4)
	var aOpened, bOpened bool
	u := &UnionAll{Inputs: []Operator{
		&openTracker{Operator: &BatchSource{Data: a}, opened: &aOpened},
		&openTracker{Operator: &Sort{Input: &BatchSource{Data: b}, Keys: []storage.SortKey{{Col: 0}}}, opened: &bOpened},
	}}
	if err := u.Open(); err != nil {
		t.Fatal(err)
	}
	if bOpened {
		t.Fatal("UnionAll.Open eagerly opened input 1")
	}
	first, err := u.Next()
	if err != nil || first == nil {
		t.Fatalf("first batch: %v %v", first, err)
	}
	if !aOpened {
		t.Fatal("input 0 should be open after the first batch")
	}
	if bOpened {
		t.Fatal("input 1 opened before input 0 was exhausted")
	}
	rows := first.Len()
	for {
		nb, err := u.Next()
		if err != nil {
			t.Fatal(err)
		}
		if nb == nil {
			break
		}
		rows += nb.Len()
	}
	if !bOpened {
		t.Fatal("input 1 never opened")
	}
	if rows != a.Len()+b.Len() {
		t.Fatalf("got %d rows, want %d", rows, a.Len()+b.Len())
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
}

// lowAggWindow shrinks the aggregate fold window so test-sized inputs
// exercise the windowed path.
func lowAggWindow(t *testing.T) {
	t.Helper()
	old := aggWindowBatches
	aggWindowBatches = 2
	t.Cleanup(func() { aggWindowBatches = old })
}

// TestAggregateWindowedMatchesSerial drives the bounded-window
// partitioned fold (input ≫ window) against the serial fold for the
// fast path, the generic path, and the mid-stream fast→generic
// migration, at several worker counts.
func TestAggregateWindowedMatchesSerial(t *testing.T) {
	lowMorselRows(t)
	lowAggWindow(t)

	t.Run("fast path", func(t *testing.T) {
		tb := testTable(t, "t", 6000, 41)
		s := tb.Schema()
		group := []expr.Expr{colRef(s, "id")} // NOT NULL int key
		aggs := []*expr.Aggregate{{Kind: expr.AggCountStar}, {Kind: expr.AggSum, Input: colRef(s, "val")}}
		names := []string{"id", "c", "s"}
		want := mustDrain(t, makeAgg(tb, group, aggs, names, 0))
		for _, workers := range []int{2, 8} {
			got := mustDrain(t, makeAgg(tb, group, aggs, names, workers))
			sameBatches(t, fmt.Sprintf("workers=%d", workers), got, want)
		}
	})

	t.Run("generic path", func(t *testing.T) {
		tb := testTable(t, "t", 6000, 42)
		s := tb.Schema()
		group := []expr.Expr{colRef(s, "tag"), colRef(s, "grp")}
		aggs := []*expr.Aggregate{
			{Kind: expr.AggCount, Input: colRef(s, "id"), Distinct: true},
			{Kind: expr.AggAvg, Input: colRef(s, "val")},
		}
		names := []string{"tag", "grp", "dc", "a"}
		want := mustDrain(t, makeAgg(tb, group, aggs, names, 0))
		for _, workers := range []int{2, 8} {
			got := mustDrain(t, makeAgg(tb, group, aggs, names, workers))
			sameBatches(t, fmt.Sprintf("workers=%d", workers), got, want)
		}
	})

	t.Run("late null migrates fast to generic", func(t *testing.T) {
		// NULL keys appear only in the last batch: the windowed fold
		// starts on the int64 fast path and must migrate every group's
		// accumulated state mid-stream.
		tb := storage.NewTable("m", storage.NewSchema(
			storage.Col("g", storage.TypeInt64),
			storage.Col("v", storage.TypeFloat64),
		))
		n := 6 * storage.BatchSize
		for i := 0; i < n; i++ {
			g := storage.Int64(int64(i % 97))
			if i >= n-100 && i%3 == 0 {
				g = storage.Null(storage.TypeInt64)
			}
			if err := tb.AppendRow(g, storage.Float64(float64(i)*0.25)); err != nil {
				t.Fatal(err)
			}
		}
		s := tb.Schema()
		group := []expr.Expr{colRef(s, "g")}
		aggs := []*expr.Aggregate{{Kind: expr.AggSum, Input: colRef(s, "v")}, {Kind: expr.AggCountStar}}
		names := []string{"g", "s", "c"}
		want := mustDrain(t, makeAgg(tb, group, aggs, names, 0))
		for _, workers := range []int{2, 8} {
			got := mustDrain(t, makeAgg(tb, group, aggs, names, workers))
			sameBatches(t, fmt.Sprintf("workers=%d", workers), got, want)
		}
	})
}

// TestCancelMidStreamReleasesBudget cancels parallel plans mid-stream
// and asserts every borrowed worker-budget slot is returned — both for
// a plain Gather and for a Gather over a spooled join.
func TestCancelMidStreamReleasesBudget(t *testing.T) {
	lowMorselRows(t)
	tb := testTable(t, "t", 4000, 51)
	right := testTable(t, "r", 60, 52)

	plans := map[string]func(budget *sched.Budget) Operator{
		"scan": func(budget *sched.Budget) Operator {
			return ParallelizeBudget(pipeline(tb), 8, budget)
		},
		"spooled join": func(budget *sched.Budget) Operator {
			j := &HashJoin{Left: NewTableScan(tb), Right: NewTableScan(right),
				LeftKeys: []int{0}, RightKeys: []int{1}, Type: InnerJoin}
			f := &Filter{Input: j, Pred: gt(&expr.ColumnRef{Name: "val", Index: 2, Typ: storage.TypeFloat64}, -2)}
			return ParallelizeBudget(f, 8, budget)
		},
	}
	for name, build := range plans {
		budget := sched.NewBudget(4)
		ctx, cancel := context.WithCancel(context.Background())
		op := WithContext(ctx, build(budget))
		if err := op.Open(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := op.Next(); err != nil {
			t.Fatalf("%s: first batch: %v", name, err)
		}
		cancel()
		for {
			b, err := op.Next()
			if err != nil || b == nil {
				break // cancellation landed (or the stream ended)
			}
		}
		if err := op.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		if inUse := budget.InUse(); inUse != 0 {
			t.Fatalf("%s: %d budget slots leaked after cancel", name, inUse)
		}
	}
}
