package exec

import "repro/internal/storage"

// OneRow emits exactly one row with a single hidden column. The planner
// projects literal select items over it for FROM-less queries
// (SELECT 1+1).
type OneRow struct {
	sent  bool
	stats OpStats
}

var oneRowSchema = storage.NewSchema(storage.Col("$one", storage.TypeInt64))

// Schema implements Operator.
func (o *OneRow) Schema() storage.Schema { return oneRowSchema }

// OpStats implements Instrumented.
func (o *OneRow) OpStats() *OpStats { return &o.stats }

// Open implements Operator.
func (o *OneRow) Open() error {
	t0 := o.stats.begin()
	o.sent = false
	o.stats.opened(t0)
	return nil
}

// Next implements Operator.
func (o *OneRow) Next() (*storage.Batch, error) {
	t0 := o.stats.begin()
	b, err := o.next()
	o.stats.record(t0, b)
	return b, err
}

func (o *OneRow) next() (*storage.Batch, error) {
	if o.sent {
		return nil, nil
	}
	o.sent = true
	b := storage.NewBatch(oneRowSchema)
	if err := b.AppendRow(storage.Int64(1)); err != nil {
		return nil, err
	}
	return b, nil
}

// Close implements Operator.
func (o *OneRow) Close() error {
	o.stats.closed()
	return nil
}
