package exec

import "repro/internal/storage"

// OneRow emits exactly one row with a single hidden column. The planner
// projects literal select items over it for FROM-less queries
// (SELECT 1+1).
type OneRow struct {
	sent bool
}

var oneRowSchema = storage.NewSchema(storage.Col("$one", storage.TypeInt64))

// Schema implements Operator.
func (o *OneRow) Schema() storage.Schema { return oneRowSchema }

// Open implements Operator.
func (o *OneRow) Open() error {
	o.sent = false
	return nil
}

// Next implements Operator.
func (o *OneRow) Next() (*storage.Batch, error) {
	if o.sent {
		return nil, nil
	}
	o.sent = true
	b := storage.NewBatch(oneRowSchema)
	if err := b.AppendRow(storage.Int64(1)); err != nil {
		return nil, err
	}
	return b, nil
}

// Close implements Operator.
func (o *OneRow) Close() error { return nil }
