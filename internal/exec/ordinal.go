package exec

import "repro/internal/storage"

// Ordinal appends a monotonically increasing INTEGER column to its
// input. The vertex runtime's 3-way-join input path (the ablation
// baseline for the paper's Table-Unions optimization) uses it to give
// message and edge tuples stable identities so workers can deduplicate
// the join product.
type Ordinal struct {
	Input Operator
	Name  string

	out   storage.Schema
	next  int64
	stats OpStats
}

// OpStats implements Instrumented.
func (o *Ordinal) OpStats() *OpStats { return &o.stats }

// Schema implements Operator.
func (o *Ordinal) Schema() storage.Schema {
	if o.out.Len() == 0 {
		in := o.Input.Schema()
		cols := make([]storage.ColumnDef, 0, in.Len()+1)
		cols = append(cols, in.Cols...)
		cols = append(cols, storage.Col(o.Name, storage.TypeInt64))
		o.out = storage.NewSchema(cols...)
	}
	return o.out
}

// Open implements Operator.
func (o *Ordinal) Open() error {
	t0 := o.stats.begin()
	o.Schema()
	o.next = 0
	err := o.Input.Open()
	o.stats.opened(t0)
	return err
}

// Next implements Operator.
func (o *Ordinal) Next() (*storage.Batch, error) {
	t0 := o.stats.begin()
	b, err := o.nextBatch()
	o.stats.record(t0, b)
	return b, err
}

func (o *Ordinal) nextBatch() (*storage.Batch, error) {
	b, err := o.Input.Next()
	if err != nil || b == nil {
		return nil, err
	}
	ord := storage.NewInt64Column(nil)
	for i := 0; i < b.Len(); i++ {
		ord.AppendInt64(o.next)
		o.next++
	}
	cols := make([]storage.Column, 0, len(b.Cols)+1)
	cols = append(cols, b.Cols...)
	cols = append(cols, ord)
	return &storage.Batch{Schema: o.out, Cols: cols}, nil
}

// Close implements Operator.
func (o *Ordinal) Close() error {
	o.stats.closed()
	return o.Input.Close()
}
