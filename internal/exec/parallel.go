package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/storage"
)

// Morsel-driven parallelism. A stateless pipeline fragment (a stack of
// Filter/Project over a splittable source) is cloned once per worker,
// each clone reading a disjoint contiguous row range ("morsel") of the
// source; a Gather runs the fragments on goroutines and merges their
// batches through bounded channels, emitting them in fragment order so
// a parallel plan produces exactly the rows — in exactly the order — of
// its serial counterpart. HashJoin and HashAggregate parallelize
// internally (see join.go, aggregate.go); the planner decides where
// fragments are inserted.

// MinMorselRows is the row count below which splitting a source is not
// worth the goroutine and channel overhead. A source is divided into at
// most rows/MinMorselRows fragments. It is a variable so tests can
// force parallel execution on small inputs.
var MinMorselRows = 2048

// gatherBuffer is the per-fragment bounded channel capacity, in
// batches. Fragments run ahead of the consumer by at most this much.
const gatherBuffer = 4

// splitParts returns how many fragments to split `rows` rows into,
// given a worker budget. A result below 2 means "do not split".
func splitParts(rows, workers int) int {
	if workers < 2 || rows < 2*MinMorselRows {
		return 1
	}
	k := rows / MinMorselRows
	if k > workers {
		k = workers
	}
	return k
}

// gatherItem is one message from a fragment goroutine to the Gather.
type gatherItem struct {
	batch *storage.Batch
	err   error
}

// Gather runs its fragment operators concurrently on a worker pool and
// emits their batches in fragment order (fragment 0's whole output,
// then fragment 1's, ...). Because the planner assigns fragments
// contiguous, in-order morsels, this reproduces the serial row order
// exactly — parallel execution is row-for-row deterministic at ANY
// pool size, so the global worker budget can shrink the pool under
// load without changing results. Each fragment pushes through a
// bounded channel, so fragments compute ahead concurrently while the
// consumer drains them in order.
//
// Pool sizing: one goroutine is the statement's own entitlement; up to
// len(Fragments)-1 extras come from Budget (nil = unlimited). Pool
// workers claim fragment indexes in order, which keeps the assigned
// set a contiguous prefix — the consumer can therefore never wait on a
// fragment that no worker will reach (no deadlock at any pool size).
type Gather struct {
	Fragments []Operator
	// Budget is the shared extra-worker budget (nil = unlimited).
	Budget *sched.Budget

	chans   []chan gatherItem
	stop    chan struct{}
	next    atomic.Int64 // next unclaimed fragment index
	granted int          // budget slots held while running
	cur     int
	wg      sync.WaitGroup
	running bool
}

// Schema implements Operator.
func (g *Gather) Schema() storage.Schema { return g.Fragments[0].Schema() }

// Open implements Operator: it launches the fragment worker pool.
func (g *Gather) Open() error {
	g.stop = make(chan struct{})
	g.cur = 0
	g.next.Store(0)
	g.chans = make([]chan gatherItem, len(g.Fragments))
	for i := range g.Fragments {
		g.chans[i] = make(chan gatherItem, gatherBuffer)
	}
	g.running = true
	g.granted = g.Budget.TryAcquire(len(g.Fragments) - 1)
	pool := 1 + g.granted
	g.wg.Add(pool)
	for w := 0; w < pool; w++ {
		go func() {
			defer g.wg.Done()
			for {
				select {
				case <-g.stop:
					return
				default:
				}
				i := int(g.next.Add(1)) - 1
				if i >= len(g.Fragments) {
					return
				}
				g.run(i)
			}
		}()
	}
	return nil
}

// run drives one fragment to completion, pushing its batches into the
// fragment's channel. It aborts promptly when the Gather is closed.
func (g *Gather) run(i int) {
	out := g.chans[i]
	defer close(out)
	send := func(it gatherItem) bool {
		select {
		case out <- it:
			return true
		case <-g.stop:
			return false
		}
	}
	frag := g.Fragments[i]
	if err := frag.Open(); err != nil {
		send(gatherItem{err: err})
		return
	}
	defer frag.Close()
	for {
		b, err := frag.Next()
		if err != nil {
			send(gatherItem{err: err})
			return
		}
		if b == nil {
			return
		}
		if !send(gatherItem{batch: b}) {
			return
		}
	}
}

// Next implements Operator.
func (g *Gather) Next() (*storage.Batch, error) {
	for g.cur < len(g.chans) {
		it, ok := <-g.chans[g.cur]
		if !ok {
			g.cur++
			continue
		}
		if it.err != nil {
			return nil, it.err
		}
		return it.batch, nil
	}
	return nil, nil
}

// Close implements Operator: it signals all fragments to stop, waits
// for the pool to exit, and returns the borrowed budget slots.
func (g *Gather) Close() error {
	if !g.running {
		return nil
	}
	g.running = false
	close(g.stop)
	g.wg.Wait()
	g.Budget.Release(g.granted)
	g.granted = 0
	g.chans = nil
	g.stop = nil
	return nil
}

// spool materializes an operator's output once and serves it to
// several SpoolPart readers. It lets a Filter/Project stack run in
// parallel over the output of an operator that cannot itself be split
// (a join or an aggregate): the base runs once, its result is divided
// into morsels. The first part to Open performs the drain; batches are
// kept as produced (no concatenation), indexed by running row offsets.
type spool struct {
	input Operator

	once    sync.Once
	batches []*storage.Batch
	starts  []int // starts[i] = global row offset of batches[i]
	rows    int
	err     error
}

func (s *spool) materialize() error {
	s.once.Do(func() {
		if s.err = s.input.Open(); s.err != nil {
			return
		}
		defer s.input.Close()
		for {
			b, err := s.input.Next()
			if err != nil {
				s.err = err
				return
			}
			if b == nil {
				return
			}
			if b.Len() == 0 {
				continue
			}
			s.starts = append(s.starts, s.rows)
			s.batches = append(s.batches, b)
			s.rows += b.Len()
		}
	})
	return s.err
}

// SpoolPart reads rows [part*rows/parts, (part+1)*rows/parts) of a
// shared spool. Parts are safe to Open concurrently.
type SpoolPart struct {
	sp          *spool
	schema      storage.Schema
	part, parts int

	lo, hi int // row range
	cur    int // batch index
}

// Schema implements Operator.
func (p *SpoolPart) Schema() storage.Schema { return p.schema }

// Open implements Operator.
func (p *SpoolPart) Open() error {
	if err := p.sp.materialize(); err != nil {
		return err
	}
	n := p.sp.rows
	p.lo = p.part * n / p.parts
	p.hi = (p.part + 1) * n / p.parts
	p.cur = 0
	for p.cur < len(p.sp.batches) && p.sp.starts[p.cur]+p.sp.batches[p.cur].Len() <= p.lo {
		p.cur++
	}
	return nil
}

// Next implements Operator: it emits the slices of the spooled batches
// that overlap this part's row range, in order.
func (p *SpoolPart) Next() (*storage.Batch, error) {
	if p.lo >= p.hi || p.cur >= len(p.sp.batches) {
		return nil, nil
	}
	b := p.sp.batches[p.cur]
	start := p.sp.starts[p.cur]
	if start >= p.hi {
		return nil, nil
	}
	from, to := p.lo-start, p.hi-start
	if from < 0 {
		from = 0
	}
	if to > b.Len() {
		to = b.Len()
	}
	p.lo = start + to
	p.cur++
	if from == 0 && to == b.Len() {
		return b, nil
	}
	return b.Slice(from, to), nil
}

// Close implements Operator. The shared spool is not released: sibling
// parts (and a re-Open) may still need it.
func (p *SpoolPart) Close() error { return nil }

// Parallelize rewrites op into a Gather over per-morsel fragment
// clones when op is a stack of stateless operators (Filter, Project)
// over a splittable source — a TableScan, a BatchSource, an existing
// Gather (whose fragments are adopted and re-wrapped), or a join/
// aggregate whose output is spooled. It returns op unchanged when
// workers < 2 or no profitable split exists. The rewrite preserves row
// order exactly (see Gather), so serial and parallel plans produce
// identical results.
func Parallelize(op Operator, workers int) Operator {
	return ParallelizeBudget(op, workers, nil)
}

// ParallelizeBudget is Parallelize with a shared extra-worker budget
// installed on the resulting Gather (nil = unlimited).
func ParallelizeBudget(op Operator, workers int, budget *sched.Budget) Operator {
	if workers < 2 {
		return op
	}
	frags, ok := splitFragment(op, workers, 0)
	if !ok || len(frags) < 2 {
		return op
	}
	return &Gather{Fragments: frags, Budget: budget}
}

// splitFragment clones the stateless operator stack rooted at op into
// per-morsel fragments. depth counts the stateless operators above op:
// a bare source with nothing to compute is not worth a Gather.
func splitFragment(op Operator, workers, depth int) ([]Operator, bool) {
	switch o := op.(type) {
	case *TableScan:
		if depth == 0 {
			return nil, false
		}
		n := splitParts(o.Table.NumRows(), workers)
		if n < 2 {
			return nil, false
		}
		out := make([]Operator, n)
		for i := range out {
			out[i] = &TableScan{Table: o.Table, OutSchema: o.OutSchema, part: i, parts: n}
		}
		return out, true
	case *BatchSource:
		if depth == 0 {
			return nil, false
		}
		n := splitParts(o.Data.Len(), workers)
		if n < 2 {
			return nil, false
		}
		out := make([]Operator, n)
		for i := range out {
			out[i] = &BatchSource{Data: o.Data, part: i, parts: n}
		}
		return out, true
	case *Gather:
		// Already parallel: adopt its fragments so the caller's
		// stateless stack is fused into each of them.
		return o.Fragments, true
	case *Filter:
		kids, ok := splitFragment(o.Input, workers, depth+1)
		if !ok {
			return nil, false
		}
		out := make([]Operator, len(kids))
		for i, k := range kids {
			out[i] = &Filter{Input: k, Pred: o.Pred}
		}
		return out, true
	case *Project:
		kids, ok := splitFragment(o.Input, workers, depth+1)
		if !ok {
			return nil, false
		}
		out := make([]Operator, len(kids))
		for i, k := range kids {
			out[i] = &Project{Input: k, Exprs: o.Exprs, Out: o.Out}
		}
		return out, true
	case *HashJoin, *NestedLoopJoin, *HashAggregate:
		// The base cannot be split, but its output can: run it once
		// into a spool and divide the result into morsels, so the
		// Filter/Project stack above still runs on all workers.
		if depth == 0 {
			return nil, false
		}
		sp := &spool{input: op}
		out := make([]Operator, workers)
		for i := range out {
			out[i] = &SpoolPart{sp: sp, schema: op.Schema(), part: i, parts: workers}
		}
		return out, true
	}
	return nil, false
}
