package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/storage"
)

// Morsel-driven parallelism. A stateless pipeline fragment (a stack of
// Filter/Project over a splittable source) is cloned once per worker,
// each clone reading a disjoint contiguous row range ("morsel") of the
// source; a Gather runs the fragments on goroutines and merges their
// batches through bounded channels, emitting them in fragment order so
// a parallel plan produces exactly the rows — in exactly the order — of
// its serial counterpart. HashJoin and HashAggregate parallelize
// internally (see join.go, aggregate.go); the planner decides where
// fragments are inserted.

// MinMorselRows is the row count below which splitting a source is not
// worth the goroutine and channel overhead. A source is divided into at
// most rows/MinMorselRows fragments. It is a variable so tests can
// force parallel execution on small inputs.
var MinMorselRows = 2048

// gatherBuffer is the per-fragment bounded channel capacity, in
// batches. Fragments run ahead of the consumer by at most this much.
const gatherBuffer = 4

// splitParts returns how many fragments to split `rows` rows into,
// given a worker budget. A result below 2 means "do not split".
func splitParts(rows, workers int) int {
	if workers < 2 || rows < 2*MinMorselRows {
		return 1
	}
	k := rows / MinMorselRows
	if k > workers {
		k = workers
	}
	return k
}

// gatherItem is one message from a fragment goroutine to the Gather.
type gatherItem struct {
	batch *storage.Batch
	err   error
}

// Gather runs its fragment operators concurrently on a worker pool and
// emits their batches in fragment order (fragment 0's whole output,
// then fragment 1's, ...). Because the planner assigns fragments
// contiguous, in-order morsels, this reproduces the serial row order
// exactly — parallel execution is row-for-row deterministic at ANY
// pool size, so the global worker budget can shrink the pool under
// load without changing results. Each fragment pushes through a
// bounded channel, so fragments compute ahead concurrently while the
// consumer drains them in order.
//
// Pool sizing: one goroutine is the statement's own entitlement; up to
// len(Fragments)-1 extras come from Budget (nil = unlimited). Pool
// workers claim fragment indexes in order, which keeps the assigned
// set a contiguous prefix — the consumer can therefore never wait on a
// fragment that no worker will reach (no deadlock at any pool size).
type Gather struct {
	Fragments []Operator
	// Budget is the shared extra-worker budget (nil = unlimited).
	Budget *sched.Budget

	// spools are the shared incremental spools feeding SpoolPart
	// fragments; Close aborts them so blocked parts (and the spool
	// producer goroutine) unwind before the pool is joined.
	spools []*spool

	chans   []chan gatherItem
	stop    chan struct{}
	next    atomic.Int64 // next unclaimed fragment index
	granted int          // budget slots held while running
	cur     int
	wg      sync.WaitGroup
	running bool
	stats   OpStats
}

// Schema implements Operator.
func (g *Gather) Schema() storage.Schema { return g.Fragments[0].Schema() }

// OpStats implements Instrumented.
func (g *Gather) OpStats() *OpStats { return &g.stats }

// PoolSize reports the worker-pool size of the latest Open (its own
// entitlement plus whatever the budget granted).
func (g *Gather) PoolSize() int { return 1 + g.granted }

// Open implements Operator: it launches the fragment worker pool.
func (g *Gather) Open() error {
	t0 := g.stats.begin()
	err := g.open()
	g.stats.opened(t0)
	return err
}

func (g *Gather) open() error {
	for _, sp := range g.spools {
		sp.rearm() // clear a prior Close's abort before workers start
	}
	g.stop = make(chan struct{})
	g.cur = 0
	g.next.Store(0)
	g.chans = make([]chan gatherItem, len(g.Fragments))
	for i := range g.Fragments {
		g.chans[i] = make(chan gatherItem, gatherBuffer)
	}
	g.running = true
	g.granted = g.Budget.TryAcquire(len(g.Fragments) - 1)
	pool := 1 + g.granted
	g.wg.Add(pool)
	for w := 0; w < pool; w++ {
		go func() {
			defer g.wg.Done()
			for {
				select {
				case <-g.stop:
					return
				default:
				}
				i := int(g.next.Add(1)) - 1
				if i >= len(g.Fragments) {
					return
				}
				g.run(i)
			}
		}()
	}
	return nil
}

// run drives one fragment to completion, pushing its batches into the
// fragment's channel. It aborts promptly when the Gather is closed.
func (g *Gather) run(i int) {
	out := g.chans[i]
	defer close(out)
	send := func(it gatherItem) bool {
		select {
		case out <- it:
			return true
		case <-g.stop:
			return false
		}
	}
	frag := g.Fragments[i]
	if err := frag.Open(); err != nil {
		send(gatherItem{err: err})
		return
	}
	defer frag.Close()
	for {
		b, err := frag.Next()
		if err != nil {
			send(gatherItem{err: err})
			return
		}
		if b == nil {
			return
		}
		if !send(gatherItem{batch: b}) {
			return
		}
	}
}

// Next implements Operator.
func (g *Gather) Next() (*storage.Batch, error) {
	t0 := g.stats.begin()
	b, err := g.nextBatch()
	g.stats.record(t0, b)
	return b, err
}

func (g *Gather) nextBatch() (*storage.Batch, error) {
	for g.cur < len(g.chans) {
		it, ok := <-g.chans[g.cur]
		if !ok {
			g.cur++
			continue
		}
		if it.err != nil {
			return nil, it.err
		}
		return it.batch, nil
	}
	return nil, nil
}

// Close implements Operator: it signals all fragments to stop, aborts
// any shared spools (waking parts blocked on them), waits for the pool
// to exit, and returns the borrowed budget slots.
func (g *Gather) Close() error {
	g.stats.closed()
	if !g.running {
		return nil
	}
	g.running = false
	close(g.stop)
	for _, sp := range g.spools {
		sp.abort()
	}
	g.wg.Wait()
	g.Budget.Release(g.granted)
	g.granted = 0
	g.chans = nil
	g.stop = nil
	return nil
}

// spoolLeadRows bounds how far the spool producer runs ahead of what
// part 0's reader has consumed, in rows. Combined with part 0 being
// the first fragment the Gather consumer drains, this keeps the base
// operator's un-consumed output O(batch) instead of O(result): an
// early-exiting consumer (LIMIT) stalls the producer after a bounded
// overshoot instead of paying for a full drain.
var spoolLeadRows = gatherBuffer * storage.BatchSize

// errSpoolAborted unwinds SpoolPart readers when their Gather closes
// mid-stream; the Gather drops the error on the floor (its stop
// channel is already closed).
var errSpoolAborted = fmt.Errorf("exec: spool aborted")

// spool runs an operator that cannot itself be split (a join or an
// aggregate) once, incrementally, and serves its output to several
// SpoolPart readers so a Filter/Project stack above it still runs in
// parallel. The base drains on a dedicated producer goroutine into a
// shared batch list; part 0 — the first fragment the Gather consumer
// reads — streams rows as soon as their final part assignment is
// certain (row r belongs to part 0 for any final total once
// r·parts < rows seen), while later parts wait for the drain to finish
// before their row range [part·n/parts, (part+1)·n/parts) is known.
// The producer blocks once it runs spoolLeadRows ahead of part 0's
// reader, so an abandoned statement stops pulling from the base after
// a bounded overshoot.
//
// The retained batch list is memory-accounted: each appended batch is
// reserved against the statement grant, and the first denied
// reservation freezes the in-memory prefix and routes every later
// batch into a disk overflow run. Rows below memRows are served from
// memory, rows at or above it are decoded from the run's frames — the
// row numbering (and therefore every part's range and order) is
// identical either way.
type spool struct {
	input Operator
	parts int
	mem   *sched.MemBudget
	fs    storage.SpillFS

	mu        sync.Mutex
	cond      *sync.Cond
	started   bool // producer launched for the current pass
	producing bool // producer goroutine still running
	done      bool // base fully drained without error
	aborted   bool
	err       error
	batches   []*storage.Batch
	starts    []int // starts[i] = global row offset of batches[i]
	rows      int
	consumed0 int // rows part 0 has emitted (producer backpressure gauge)

	mt         memTracker
	dw         *storage.RunWriter // disk overflow, while producing
	drun       *storage.SpillRun  // sealed overflow, after the drain
	memRows    int                // rows retained in memory; the rest are on disk
	spillBytes int64
	spillRuns  int64
}

// frameReader is the part of RunWriter and SpillRun the spool needs to
// serve overflow rows: random access to sealed frames.
type frameReader interface {
	Frames() int
	FrameRows(i int) int
	FrameStart(i int) int64
	ReadFrame(i int) (*storage.Batch, error)
}

// overflow returns the disk side of the spool, if any: the in-progress
// writer while producing, the sealed run after. Callers hold s.mu.
func (s *spool) overflow() frameReader {
	if s.drun != nil {
		return s.drun
	}
	if s.dw != nil {
		return s.dw
	}
	return nil
}

// activate ensures the producer goroutine is running (or the data is
// already complete). On an aborted spool it does nothing: abort is
// sticky until the owning Gather re-arms the spool in its next Open,
// so a straggler pool worker that claims a fragment while Close is in
// flight cannot revive the producer.
func (s *spool) activate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
	}
	if !s.aborted && !s.started {
		s.started = true
		s.producing = true
		go s.produce()
	}
}

// rearm clears an abort before a fresh Gather.Open: a completed drain
// is kept and served from memory; an interrupted one is discarded so
// the next activate replays the base from scratch. Only the Gather
// consumer calls it, strictly before any pool worker runs.
func (s *spool) rearm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.aborted {
		return
	}
	if s.done {
		s.aborted = false // data complete; serve from memory
		return
	}
	for s.producing {
		s.cond.Wait()
	}
	s.drun.Close()
	s.drun = nil
	s.batches, s.starts, s.rows, s.consumed0, s.memRows = nil, nil, 0, 0, 0
	s.started, s.aborted, s.err = false, false, nil
}

// abort stops the producer and wakes every blocked reader. It is
// sticky: until rearm, parts neither block nor restart the producer —
// they fail fast with errSpoolAborted. Memory reservations are
// returned here (the statement's grant dies with the statement);
// retained batches a later rearm keeps ride along unreserved, like
// any other cached-plan state.
func (s *spool) abort() {
	s.mu.Lock()
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
	}
	s.aborted = true
	s.cond.Broadcast()
	for s.producing {
		s.cond.Wait()
	}
	s.mt.releaseAll()
	if s.drun != nil {
		// The overflow run is a spill file, and spill files must not
		// outlive their statement: an idle cached plan holding a run
		// would pin temp_file_limit budget and spill-dir bytes
		// indefinitely. Dropping the disk tail leaves the retained
		// pass incomplete, so all of it goes and the next Open
		// replays the base — only in-memory completed drains are kept
		// across checkouts.
		s.drun.Close()
		s.drun = nil
		s.batches, s.starts, s.rows, s.consumed0, s.memRows = nil, nil, 0, 0, 0
		s.started, s.done, s.err = false, false, nil
	}
	s.mu.Unlock()
}

// reset discards everything the spool retained — batches, overflow
// run, completion state — so a cached plan checked out for a new
// statement replays its base with fresh parameter bindings.
func (s *spool) reset() {
	s.abort()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drun.Close()
	s.drun = nil
	s.batches, s.starts, s.rows, s.consumed0, s.memRows = nil, nil, 0, 0, 0
	s.started, s.done, s.err = false, false, nil
}

// produce drains the base operator, appending batches under the lock
// and blocking while more than spoolLeadRows of part 0's share sit
// unconsumed. The base is fully closed before endProduce publishes
// completion, so abort/activate never overlap an in-flight Close.
func (s *spool) produce() {
	if err := s.input.Open(); err != nil {
		s.endProduce(err)
		return
	}
	var ferr error
	for {
		s.mu.Lock()
		for !s.aborted && s.rows/s.parts-s.consumed0 >= spoolLeadRows {
			s.cond.Wait()
		}
		aborted := s.aborted
		s.mu.Unlock()
		if aborted {
			break
		}
		b, err := s.input.Next()
		if err != nil || b == nil {
			ferr = err
			break
		}
		if b.Len() == 0 {
			continue
		}
		if err := s.append(b); err != nil {
			ferr = err
			break
		}
	}
	s.input.Close()
	s.endProduce(ferr)
}

// append publishes one produced batch. It stays in memory while the
// reservation succeeds; the first denial (with at least one batch
// already retained — the working floor) freezes the in-memory prefix
// and starts a disk overflow run that every later batch goes to.
func (s *spool) append(b *storage.Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dw == nil && !s.mt.reserve(storage.BatchBytes(b)) && s.rows > 0 {
		w, err := storage.NewRunWriter(s.fs, b.Schema)
		if err != nil {
			return err
		}
		s.dw = w
		s.memRows = s.rows
	}
	if s.dw != nil {
		if err := s.dw.Write(b); err != nil {
			return err
		}
	} else {
		s.starts = append(s.starts, s.rows)
		s.batches = append(s.batches, b)
	}
	s.rows += b.Len()
	s.cond.Broadcast()
	return nil
}

// endProduce publishes the producer's exit: the error (if any), the
// completion flag, and the wake-up for every blocked reader. A clean
// exit seals the overflow run so readers switch from the writer's
// frames to the sealed run; any other exit discards it.
func (s *spool) endProduce(err error) {
	s.mu.Lock()
	if s.dw != nil {
		if err == nil && !s.aborted {
			run, ferr := s.dw.Finish()
			if ferr != nil {
				err = ferr
			} else {
				s.drun = run
				s.spillBytes += run.Bytes()
				s.spillRuns++
			}
		} else {
			s.dw.Abort()
		}
		s.dw = nil
	}
	if err != nil {
		s.err = err
	} else if !s.aborted {
		s.done = true
	}
	s.producing = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SpoolPart reads rows [part*rows/parts, (part+1)*rows/parts) of a
// shared spool. Parts are safe to Open and iterate concurrently; part
// 0 streams while the base is still producing.
type SpoolPart struct {
	sp          *spool
	schema      storage.Schema
	part, parts int

	pos   int // next global row to emit (-1 = range not yet known)
	cur   int // in-memory batch index hint
	dcur  int // overflow frame index hint
	stats OpStats
}

// SpillStats reports the shared spool's overflow so far (bytes and
// runs written to disk); EXPLAIN ANALYZE surfaces it on part 0.
func (p *SpoolPart) SpillStats() (bytes, runs int64) {
	p.sp.mu.Lock()
	defer p.sp.mu.Unlock()
	return p.sp.spillBytes, p.sp.spillRuns
}

// Part returns this part's index within the spool.
func (p *SpoolPart) Part() int { return p.part }

// Schema implements Operator.
func (p *SpoolPart) Schema() storage.Schema { return p.schema }

// OpStats implements Instrumented.
func (p *SpoolPart) OpStats() *OpStats { return &p.stats }

// Spooled returns the operator feeding this part's shared spool
// (EXPLAIN descends through it).
func (p *SpoolPart) Spooled() Operator { return p.sp.input }

// Open implements Operator.
func (p *SpoolPart) Open() error {
	t0 := p.stats.begin()
	p.sp.activate()
	p.pos, p.cur, p.dcur = -1, 0, 0
	if p.part == 0 {
		p.pos = 0
	}
	p.stats.opened(t0)
	return nil
}

// Next implements Operator: it emits the slices of the spooled batches
// that overlap this part's row range, in order, blocking until the
// next slice is certain to belong to this part.
func (p *SpoolPart) Next() (*storage.Batch, error) {
	t0 := p.stats.begin()
	b, err := p.next()
	p.stats.record(t0, b)
	return b, err
}

func (p *SpoolPart) next() (*storage.Batch, error) {
	s := p.sp
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil {
			return nil, s.err
		}
		if s.aborted {
			return nil, errSpoolAborted
		}
		var hi int
		switch {
		case s.done:
			if p.pos < 0 {
				p.pos = p.part * s.rows / p.parts
			}
			hi = (p.part + 1) * s.rows / p.parts
		case p.part == 0:
			hi = s.rows / p.parts // certain prefix of part 0
		default:
			s.cond.Wait() // later parts wait for the final row count
			continue
		}
		if p.pos >= hi {
			if s.done {
				return nil, nil
			}
			s.cond.Wait()
			continue
		}
		var (
			b     *storage.Batch
			start int
		)
		if fr := s.overflow(); fr != nil && p.pos >= s.memRows {
			// Overflow rows: decode the frame holding p.pos. The frame
			// exists — s.rows (and so hi) only advances after its batch
			// is fully written.
			rel := int64(p.pos - s.memRows)
			for p.dcur < fr.Frames() && fr.FrameStart(p.dcur)+int64(fr.FrameRows(p.dcur)) <= rel {
				p.dcur++
			}
			db, err := fr.ReadFrame(p.dcur)
			if err != nil {
				return nil, err
			}
			b, start = db, s.memRows+int(fr.FrameStart(p.dcur))
		} else {
			for p.cur < len(s.batches) && s.starts[p.cur]+s.batches[p.cur].Len() <= p.pos {
				p.cur++
			}
			b, start = s.batches[p.cur], s.starts[p.cur]
		}
		from, to := p.pos-start, hi-start
		if to > b.Len() {
			to = b.Len()
		}
		p.pos = start + to
		if p.part == 0 && p.pos > s.consumed0 {
			s.consumed0 = p.pos
			s.cond.Broadcast() // wake the producer past the lead window
		}
		if from == 0 && to == b.Len() {
			return b, nil
		}
		return b.Slice(from, to), nil
	}
}

// Close implements Operator. The shared spool is not released: sibling
// parts (and a re-Open) may still need it; the owning Gather aborts it.
func (p *SpoolPart) Close() error {
	p.stats.closed()
	return nil
}

// Parallelize rewrites op into a Gather over per-morsel fragment
// clones when op is a stack of stateless operators (Filter, Project)
// over a splittable source — a TableScan, a BatchSource, an existing
// Gather (whose fragments are adopted and re-wrapped), or a join/
// aggregate whose output is spooled. It returns op unchanged when
// workers < 2 or no profitable split exists. The rewrite preserves row
// order exactly (see Gather), so serial and parallel plans produce
// identical results.
func Parallelize(op Operator, workers int) Operator {
	return ParallelizeBudget(op, workers, nil)
}

// ParallelizeBudget is Parallelize with a shared extra-worker budget
// installed on the resulting Gather (nil = unlimited).
func ParallelizeBudget(op Operator, workers int, budget *sched.Budget) Operator {
	return ParallelizeMem(op, workers, budget, nil)
}

// ParallelizeMem is ParallelizeBudget with a statement memory grant
// installed on any spools the rewrite creates, so a spooled join or
// aggregate result overflows to disk instead of buffering without
// bound (nil = unaccounted).
func ParallelizeMem(op Operator, workers int, budget *sched.Budget, mem *sched.MemBudget) Operator {
	if workers < 2 {
		return op
	}
	var spools []*spool
	frags, ok := splitFragment(op, workers, 0, &spools, mem)
	if !ok || len(frags) < 2 {
		return op
	}
	return &Gather{Fragments: frags, Budget: budget, spools: spools}
}

// splitFragment clones the stateless operator stack rooted at op into
// per-morsel fragments, recording any shared spools it creates (or
// adopts) in *spools so the owning Gather can abort them on Close.
// depth counts the stateless operators above op: a bare source with
// nothing to compute is not worth a Gather.
func splitFragment(op Operator, workers, depth int, spools *[]*spool, mem *sched.MemBudget) ([]Operator, bool) {
	switch o := op.(type) {
	case *TableScan:
		if depth == 0 || o.NoSplit {
			return nil, false
		}
		// Shard-wise morselization: a scan over a multi-shard table is
		// split along shard boundaries first — every morsel stays inside
		// one shard and carries its own cursor, so fragments share no
		// scan state (and, later, no process). Large shards split
		// further into contiguous morsels; fragment order is shard-major
		// to preserve the serial scan's row order through Gather.
		if sh, ok := o.Table.(storage.Sharded); ok && sh.NumShards() > 1 && o.Shard == 0 {
			if splitParts(o.Table.NumRows(), workers) < 2 {
				return nil, false
			}
			var out []Operator
			for s := 0; s < sh.NumShards(); s++ {
				rows := sh.ShardRows(s)
				// A shard that is empty now still gets one (unsplit)
				// fragment: the morsel bounds are recomputed from live row
				// counts at Open, and a cached plan may run again after
				// rows land in a shard that was empty at plan time.
				k := splitParts(rows, workers)
				if k < 2 {
					out = append(out, &TableScan{Table: o.Table, OutSchema: o.OutSchema, Shard: s + 1})
					continue
				}
				for i := 0; i < k; i++ {
					out = append(out, &TableScan{Table: o.Table, OutSchema: o.OutSchema, Shard: s + 1, part: i, parts: k})
				}
			}
			if len(out) < 2 {
				return nil, false
			}
			return out, true
		}
		rows := o.Table.NumRows()
		if sh, ok := o.Table.(storage.Sharded); ok && o.Shard > 0 {
			rows = sh.ShardRows(o.Shard - 1)
		}
		n := splitParts(rows, workers)
		if n < 2 {
			return nil, false
		}
		out := make([]Operator, n)
		for i := range out {
			out[i] = &TableScan{Table: o.Table, OutSchema: o.OutSchema, Shard: o.Shard, part: i, parts: n}
		}
		return out, true
	case *BatchSource:
		if depth == 0 {
			return nil, false
		}
		n := splitParts(o.Data.Len(), workers)
		if n < 2 {
			return nil, false
		}
		out := make([]Operator, n)
		for i := range out {
			out[i] = &BatchSource{Data: o.Data, part: i, parts: n}
		}
		return out, true
	case *Gather:
		// Already parallel: adopt its fragments (and spools) so the
		// caller's stateless stack is fused into each of them.
		*spools = append(*spools, o.spools...)
		return o.Fragments, true
	case *Filter:
		kids, ok := splitFragment(o.Input, workers, depth+1, spools, mem)
		if !ok {
			return nil, false
		}
		out := make([]Operator, len(kids))
		for i, k := range kids {
			out[i] = &Filter{Input: k, Pred: o.Pred}
		}
		return out, true
	case *Project:
		kids, ok := splitFragment(o.Input, workers, depth+1, spools, mem)
		if !ok {
			return nil, false
		}
		out := make([]Operator, len(kids))
		for i, k := range kids {
			out[i] = &Project{Input: k, Exprs: o.Exprs, Out: o.Out}
		}
		return out, true
	case *HashJoin, *NestedLoopJoin, *HashAggregate:
		// The base cannot be split, but its output can: run it once
		// into a spool and divide the result into morsels, so the
		// Filter/Project stack above still runs on all workers.
		if depth == 0 {
			return nil, false
		}
		sp := &spool{input: op, parts: workers, mem: mem, mt: memTracker{mem: mem}}
		*spools = append(*spools, sp)
		out := make([]Operator, workers)
		for i := range out {
			out[i] = &SpoolPart{sp: sp, schema: op.Schema(), part: i, parts: workers}
		}
		return out, true
	}
	return nil, false
}
