package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/sched"
	"repro/internal/storage"
)

// Out-of-core executor tests: every spilling operator must produce
// byte-identical results under a force-spill memory grant, at any
// worker count, and report its spill activity through OpStats.

const spillTestBudget = 64 << 10

func bigTable(t *testing.T, rows int) *storage.Table {
	t.Helper()
	tb := storage.NewTable("big", storage.NewSchema(
		storage.Col("k", storage.TypeInt64),
		storage.Col("g", storage.TypeInt64),
		storage.Col("s", storage.TypeString),
	))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		if err := tb.AppendRow(
			iv(rng.Int63n(int64(rows/3+1))),
			iv(int64(i%97)),
			sv(fmt.Sprintf("payload-%06d", rng.Intn(rows))),
		); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func assertSameBatches(t *testing.T, label string, got, want *storage.Batch) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	for r := 0; r < want.Len(); r++ {
		gr, wr := got.Row(r), want.Row(r)
		for c := range wr {
			g, w := gr[c], wr[c]
			if g.Null != w.Null || g.I != w.I || g.F != w.F || g.S != w.S {
				t.Fatalf("%s: row %d col %d = %v, want %v", label, r, c, g, w)
			}
		}
	}
}

func TestSortSpillByteIdentical(t *testing.T) {
	tb := bigTable(t, 20000)
	keys := []storage.SortKey{{Col: 0}, {Col: 2, Desc: true}}
	want, err := Drain(&Sort{Input: NewTableScan(tb), Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		s := &Sort{Input: NewTableScan(tb), Keys: keys, Workers: workers,
			Mem: sched.NewMemBudget(spillTestBudget)}
		got, err := Drain(s)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBatches(t, fmt.Sprintf("sort workers=%d", workers), got, want)
		if s.stats.SpillRuns.Load() == 0 {
			t.Fatalf("workers=%d: 64KB sort of ~1MB input did not spill", workers)
		}
	}
}

func TestSortTinyGrantStillSorts(t *testing.T) {
	// A grant too small for even one batch must degrade to runs-per-batch,
	// not deadlock or error: the working floor keeps one batch unreserved.
	tb := bigTable(t, 5000)
	keys := []storage.SortKey{{Col: 0}}
	want, err := Drain(&Sort{Input: NewTableScan(tb), Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(&Sort{Input: NewTableScan(tb), Keys: keys, Mem: sched.NewMemBudget(1)})
	if err != nil {
		t.Fatal(err)
	}
	assertSameBatches(t, "tiny-grant sort", got, want)
}

func joinInputs(t *testing.T, rows int) (*storage.Table, *storage.Table) {
	t.Helper()
	l := storage.NewTable("l", storage.NewSchema(intCol("lk"), intCol("lv")))
	r := storage.NewTable("r", storage.NewSchema(intCol("rk"), storage.Col("rs", storage.TypeString)))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < rows; i++ {
		if err := l.AppendRow(iv(rng.Int63n(int64(rows/4+1))), iv(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := r.AppendRow(iv(rng.Int63n(int64(rows/4+1))), sv(fmt.Sprintf("r-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return l, r
}

func TestHashJoinGraceByteIdentical(t *testing.T) {
	l, r := joinInputs(t, 12000)
	mk := func(workers int, mem *sched.MemBudget) *HashJoin {
		return &HashJoin{
			Left: NewTableScan(l), Right: NewTableScan(r),
			LeftKeys: []int{0}, RightKeys: []int{0},
			Type: InnerJoin, Workers: workers, Mem: mem,
		}
	}
	want, err := Drain(mk(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("degenerate join fixture")
	}
	for _, workers := range []int{1, 2, 8} {
		j := mk(workers, sched.NewMemBudget(spillTestBudget))
		got, err := Drain(j)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBatches(t, fmt.Sprintf("grace join workers=%d", workers), got, want)
		if j.stats.SpillRuns.Load() == 0 {
			t.Fatalf("workers=%d: 64KB join did not partition to disk", workers)
		}
	}
}

func TestHashJoinGraceLeftJoinWithResidual(t *testing.T) {
	l, r := joinInputs(t, 8000)
	residual := func() expr.Expr {
		// l.lv % 3 <> 0 over the combined row (col 1 is lv).
		m, err := expr.NewBinary(expr.OpMod, &expr.ColumnRef{Name: "lv", Index: 1, Typ: storage.TypeInt64},
			&expr.Literal{Val: iv(3)})
		if err != nil {
			t.Fatal(err)
		}
		ne, err := expr.NewBinary(expr.OpNe, m, &expr.Literal{Val: iv(0)})
		if err != nil {
			t.Fatal(err)
		}
		return ne
	}
	mk := func(mem *sched.MemBudget) *HashJoin {
		return &HashJoin{
			Left: NewTableScan(l), Right: NewTableScan(r),
			LeftKeys: []int{0}, RightKeys: []int{0},
			Type: LeftJoin, Residual: residual(), Mem: mem,
		}
	}
	want, err := Drain(mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(mk(sched.NewMemBudget(spillTestBudget)))
	if err != nil {
		t.Fatal(err)
	}
	assertSameBatches(t, "grace left join", got, want)
}

func TestHashAggregateSpillByteIdentical(t *testing.T) {
	tb := bigTable(t, 20000)
	mk := func(workers int, mem *sched.MemBudget) (*HashAggregate, error) {
		sc := NewTableScan(tb)
		g := colRef(tb.Schema(), "s")
		k := colRef(tb.Schema(), "k")
		cnt := &expr.Aggregate{Kind: expr.AggCountStar}
		sum := &expr.Aggregate{Kind: expr.AggSum, Input: k}
		return &HashAggregate{
			Input: sc, GroupBy: []expr.Expr{g}, Aggs: []*expr.Aggregate{cnt, sum},
			Names: []string{"s", "c", "t"}, Workers: workers, Mem: mem,
		}, nil
	}
	base, err := mk(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Drain(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		a, err := mk(workers, sched.NewMemBudget(spillTestBudget))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Drain(a)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBatches(t, fmt.Sprintf("agg workers=%d", workers), got, want)
		if a.stats.SpillRuns.Load() == 0 {
			t.Fatalf("workers=%d: 64KB aggregate did not spill", workers)
		}
	}
}

func TestSpoolOverflowByteIdentical(t *testing.T) {
	l, r := joinInputs(t, 10000)
	mkJoin := func(mem *sched.MemBudget) Operator {
		j := &HashJoin{
			Left: NewTableScan(l), Right: NewTableScan(r),
			LeftKeys: []int{0}, RightKeys: []int{0}, Type: InnerJoin, Mem: mem,
		}
		p, err := NewProject(j, []expr.Expr{
			&expr.ColumnRef{Name: "lv", Index: 1, Typ: storage.TypeInt64},
			&expr.ColumnRef{Name: "rs", Index: 3, Typ: storage.TypeString},
		}, []string{"lv", "rs"})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	want, err := Drain(mkJoin(nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		mem := sched.NewMemBudget(spillTestBudget)
		op := ParallelizeMem(mkJoin(mem), workers, nil, mem)
		g, ok := op.(*Gather)
		if !ok {
			t.Fatalf("workers=%d: project-over-join did not parallelize (%T)", workers, op)
		}
		got, err := Drain(g)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBatches(t, fmt.Sprintf("spool workers=%d", workers), got, want)
		var spilled int64
		for _, sp := range g.spools {
			sp.mu.Lock()
			spilled += sp.spillRuns
			sp.mu.Unlock()
		}
		if spilled == 0 {
			t.Fatalf("workers=%d: 64KB spool of a ~%d-row join result stayed in memory", workers, want.Len())
		}
	}
}

func TestSpoolReopenAfterOverflow(t *testing.T) {
	// A Gather over a spilled spool must serve a second Open from the
	// retained run without re-running the base operator.
	l, r := joinInputs(t, 6000)
	mem := sched.NewMemBudget(spillTestBudget)
	j := &HashJoin{
		Left: NewTableScan(l), Right: NewTableScan(r),
		LeftKeys: []int{0}, RightKeys: []int{0}, Type: InnerJoin, Mem: mem,
	}
	p, err := NewProject(j, []expr.Expr{
		&expr.ColumnRef{Name: "lv", Index: 1, Typ: storage.TypeInt64},
	}, []string{"lv"})
	if err != nil {
		t.Fatal(err)
	}
	op := ParallelizeMem(p, 4, nil, mem)
	first, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBatches(t, "spool re-open", second, first)
}

func TestDistinctOutOfMemoryBudget(t *testing.T) {
	tb := bigTable(t, 8000)
	_, err := Drain(&Distinct{Input: NewTableScan(tb), Mem: sched.NewMemBudget(1 << 10)})
	if !errors.Is(err, ErrOutOfMemoryBudget) {
		t.Fatalf("distinct over budget: %v", err)
	}
	// Unlimited still works.
	if _, err := Drain(&Distinct{Input: NewTableScan(tb)}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedLoopJoinBuildOutOfMemoryBudget(t *testing.T) {
	l, r := joinInputs(t, 4000)
	_, err := Drain(&NestedLoopJoin{
		Left: NewTableScan(l), Right: NewTableScan(r),
		Type: InnerJoin, Mem: sched.NewMemBudget(1 << 10),
	})
	if !errors.Is(err, ErrOutOfMemoryBudget) {
		t.Fatalf("NLJ build over budget: %v", err)
	}
}

func TestNestedLoopJoinParallelByteIdentical(t *testing.T) {
	l, r := joinInputs(t, 400)
	on := func() expr.Expr {
		lt, err := expr.NewBinary(expr.OpLt,
			&expr.ColumnRef{Name: "lk", Index: 0, Typ: storage.TypeInt64},
			&expr.ColumnRef{Name: "rk", Index: 2, Typ: storage.TypeInt64})
		if err != nil {
			t.Fatal(err)
		}
		return lt
	}
	want, err := Drain(&NestedLoopJoin{Left: NewTableScan(l), Right: NewTableScan(r), Type: InnerJoin, On: on()})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Drain(&NestedLoopJoin{
			Left: NewTableScan(l), Right: NewTableScan(r),
			Type: InnerJoin, On: on(), Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameBatches(t, fmt.Sprintf("parallel NLJ workers=%d", workers), got, want)
	}
}

func TestHashJoinParallelBuildByteIdentical(t *testing.T) {
	l, r := joinInputs(t, 12000)
	want, err := Drain(&HashJoin{
		Left: NewTableScan(l), Right: NewTableScan(r),
		LeftKeys: []int{0}, RightKeys: []int{0}, Type: InnerJoin,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Drain(&HashJoin{
			Left: NewTableScan(l), Right: NewTableScan(r),
			LeftKeys: []int{0}, RightKeys: []int{0}, Type: InnerJoin, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameBatches(t, fmt.Sprintf("parallel build workers=%d", workers), got, want)
	}
}

func TestMarkTimedScopesToOneTree(t *testing.T) {
	tb := bigTable(t, 100)
	timedOp := &Sort{Input: NewTableScan(tb), Keys: []storage.SortKey{{Col: 0}}}
	coldOp := &Sort{Input: NewTableScan(tb), Keys: []storage.SortKey{{Col: 0}}}
	release := MarkTimed(timedOp)
	if _, err := Drain(timedOp); err != nil {
		t.Fatal(err)
	}
	if _, err := Drain(coldOp); err != nil {
		t.Fatal(err)
	}
	release()
	if timedOp.stats.Nanos.Load() == 0 {
		t.Fatal("marked tree recorded no timings")
	}
	if coldOp.stats.Nanos.Load() != 0 {
		t.Fatal("unmarked concurrent tree paid for timings")
	}
}
