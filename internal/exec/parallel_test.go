package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

// lowMorselRows forces morsel splitting on test-sized inputs.
func lowMorselRows(t *testing.T) {
	t.Helper()
	old := MinMorselRows
	MinMorselRows = 16
	t.Cleanup(func() { MinMorselRows = old })
}

// testTable builds an n-row table (id INTEGER, grp INTEGER nullable,
// val DOUBLE nullable, tag VARCHAR) with seeded content.
func testTable(t *testing.T, name string, n int, seed int64) *storage.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tb := storage.NewTable(name, storage.NewSchema(
		storage.NotNullCol("id", storage.TypeInt64),
		storage.Col("grp", storage.TypeInt64),
		storage.Col("val", storage.TypeFloat64),
		storage.Col("tag", storage.TypeString),
	))
	for i := 0; i < n; i++ {
		grp := storage.Int64(int64(rng.Intn(13)))
		if rng.Intn(25) == 0 {
			grp = storage.Null(storage.TypeInt64)
		}
		val := storage.Float64(rng.NormFloat64())
		if rng.Intn(30) == 0 {
			val = storage.Null(storage.TypeFloat64)
		}
		if err := tb.AppendRow(storage.Int64(int64(i)), grp, val,
			storage.Str(fmt.Sprintf("tag%d", rng.Intn(4)))); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// gt builds the predicate col > lit.
func gt(c *expr.ColumnRef, v float64) expr.Expr {
	return &expr.Binary{Op: expr.OpGt, L: c, R: &expr.Literal{Val: storage.Float64(v)}, Typ: storage.TypeBool}
}

// mustDrain drains an operator or fails the test.
func mustDrain(t *testing.T, op Operator) *storage.Batch {
	t.Helper()
	b, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// sameBatches asserts two batches are identical: schema arity, row
// count, order and every value.
func sameBatches(t *testing.T, label string, got, want *storage.Batch) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: arity %d vs %d", label, len(got.Cols), len(want.Cols))
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: rows %d vs %d", label, got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		for j := range got.Cols {
			gv, wv := got.Cols[j].Value(i), want.Cols[j].Value(i)
			if gv.Null != wv.Null || (!gv.Null && storage.Compare(gv, wv) != 0) {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, i, j, gv, wv)
			}
		}
	}
}

// pipeline builds Filter(val > 0) → Project(id, val*2) over a scan.
func pipeline(tb *storage.Table) Operator {
	s := tb.Schema()
	f := &Filter{Input: NewTableScan(tb), Pred: gt(colRef(s, "val"), 0)}
	mul := &expr.Binary{Op: expr.OpMul, L: colRef(s, "val"),
		R: &expr.Literal{Val: storage.Float64(2)}, Typ: storage.TypeFloat64}
	p, err := NewProject(f, []expr.Expr{colRef(s, "id"), mul}, []string{"id", "v2"})
	if err != nil {
		panic(err)
	}
	return p
}

func TestParallelizeMatchesSerial(t *testing.T) {
	lowMorselRows(t)
	tb := testTable(t, "t", 500, 1)
	want := mustDrain(t, pipeline(tb))
	for _, workers := range []int{2, 3, 8} {
		op := Parallelize(pipeline(tb), workers)
		if _, ok := op.(*Gather); !ok {
			t.Fatalf("workers=%d: Parallelize returned %T, want *Gather", workers, op)
		}
		sameBatches(t, fmt.Sprintf("workers=%d", workers), mustDrain(t, op), want)
	}
}

func TestParallelizeLeavesBareScanAlone(t *testing.T) {
	lowMorselRows(t)
	tb := testTable(t, "t", 500, 1)
	if op := Parallelize(NewTableScan(tb), 8); op != nil {
		if _, ok := op.(*Gather); ok {
			t.Fatal("a bare scan has no compute to parallelize; expected no Gather")
		}
	}
	if op := Parallelize(pipeline(tb), 1); op != nil {
		if _, ok := op.(*Gather); ok {
			t.Fatal("workers=1 must stay serial")
		}
	}
}

func TestGatherReopen(t *testing.T) {
	lowMorselRows(t)
	tb := testTable(t, "t", 300, 2)
	op := Parallelize(pipeline(tb), 4)
	first := mustDrain(t, op)
	second := mustDrain(t, op) // Drain opens and closes again
	sameBatches(t, "reopen", second, first)
}

type errOp struct {
	schema storage.Schema
	calls  int
}

func (e *errOp) Schema() storage.Schema { return e.schema }
func (e *errOp) Open() error            { return nil }
func (e *errOp) Next() (*storage.Batch, error) {
	e.calls++
	if e.calls > 2 {
		return nil, fmt.Errorf("boom")
	}
	b := storage.NewBatch(e.schema)
	_ = b.AppendRow(storage.Int64(1))
	return b, nil
}
func (e *errOp) Close() error { return nil }

func TestGatherPropagatesFragmentError(t *testing.T) {
	schema := storage.NewSchema(storage.Col("x", storage.TypeInt64))
	g := &Gather{Fragments: []Operator{
		&errOp{schema: schema}, &errOp{schema: schema},
	}}
	_, err := Drain(g)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

func makeJoin(left, right *storage.Table, jt JoinType, residual expr.Expr, workers int) *HashJoin {
	return &HashJoin{
		Left: NewTableScan(left), Right: NewTableScan(right),
		LeftKeys: []int{1}, RightKeys: []int{0}, // left.grp = right.id
		Type: jt, Residual: residual, Workers: workers,
	}
}

func TestParallelHashJoinFastPath(t *testing.T) {
	lowMorselRows(t)
	// Join on NOT NULL int columns to hit the fast path: left.id = right.id % bucket.
	left := testTable(t, "l", 700, 3)
	right := testTable(t, "r", 90, 4)
	for _, jt := range []JoinType{InnerJoin, LeftJoin} {
		serial := &HashJoin{Left: NewTableScan(left), Right: NewTableScan(right),
			LeftKeys: []int{0}, RightKeys: []int{1}, Type: jt}
		want := mustDrain(t, serial)
		for _, workers := range []int{2, 8} {
			par := &HashJoin{Left: NewTableScan(left), Right: NewTableScan(right),
				LeftKeys: []int{0}, RightKeys: []int{1}, Type: jt, Workers: workers}
			sameBatches(t, fmt.Sprintf("type=%d workers=%d", jt, workers), mustDrain(t, par), want)
		}
	}
}

func TestParallelHashJoinSlowPath(t *testing.T) {
	lowMorselRows(t)
	left := testTable(t, "l", 400, 5)
	right := testTable(t, "r", 80, 6)
	// A residual forces the generic probe; keys are nullable so NULL
	// handling is exercised too.
	residual := func(out storage.Schema) expr.Expr {
		return gt(&expr.ColumnRef{Name: "val", Index: 2, Typ: storage.TypeFloat64}, 0)
	}
	for _, jt := range []JoinType{InnerJoin, LeftJoin} {
		serial := makeJoin(left, right, jt, residual(storage.Schema{}), 0)
		want := mustDrain(t, serial)
		for _, workers := range []int{2, 8} {
			par := makeJoin(left, right, jt, residual(storage.Schema{}), workers)
			sameBatches(t, fmt.Sprintf("type=%d workers=%d", jt, workers), mustDrain(t, par), want)
		}
	}
}

func TestParallelSlowJoinNoMatches(t *testing.T) {
	lowMorselRows(t)
	left := testTable(t, "l", 400, 12)
	right := testTable(t, "r", 50, 13)
	// Residual that never holds: the parallel probe must serve its
	// (empty) result rather than falling back to a serial re-probe.
	never := gt(&expr.ColumnRef{Name: "val", Index: 2, Typ: storage.TypeFloat64}, 1e18)
	j := makeJoin(left, right, InnerJoin, never, 8)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.slowOut == nil {
		t.Fatal("parallel slow probe left slowOut nil; Next would re-probe serially")
	}
	b, err := j.Next()
	if err != nil || b != nil {
		t.Fatalf("empty join Next = (%v, %v), want (nil, nil)", b, err)
	}
}

func makeAgg(tb *storage.Table, groupBy []expr.Expr, aggs []*expr.Aggregate, names []string, workers int) *HashAggregate {
	return &HashAggregate{Input: NewTableScan(tb), GroupBy: groupBy, Aggs: aggs, Names: names, Workers: workers}
}

func TestParallelAggregateFastPath(t *testing.T) {
	lowMorselRows(t)
	tb := testTable(t, "t", 900, 7)
	s := tb.Schema()
	group := []expr.Expr{colRef(s, "id")} // NOT NULL int key → fast path
	aggs := []*expr.Aggregate{
		{Kind: expr.AggCountStar},
		{Kind: expr.AggSum, Input: colRef(s, "val")},
		{Kind: expr.AggMin, Input: colRef(s, "val")},
	}
	names := []string{"id", "c", "s", "m"}
	want := mustDrain(t, makeAgg(tb, group, aggs, names, 0))
	for _, workers := range []int{2, 8} {
		got := mustDrain(t, makeAgg(tb, group, aggs, names, workers))
		sameBatches(t, fmt.Sprintf("workers=%d", workers), got, want)
	}
}

func TestParallelAggregateNullableKeyFallsBack(t *testing.T) {
	lowMorselRows(t)
	tb := testTable(t, "t", 900, 8)
	s := tb.Schema()
	group := []expr.Expr{colRef(s, "grp")} // nullable → generic partitioned fold
	aggs := []*expr.Aggregate{
		{Kind: expr.AggCount, Input: colRef(s, "val")},
		{Kind: expr.AggAvg, Input: colRef(s, "val")},
		{Kind: expr.AggMax, Input: colRef(s, "val")},
	}
	names := []string{"grp", "c", "a", "m"}
	want := mustDrain(t, makeAgg(tb, group, aggs, names, 0))
	for _, workers := range []int{2, 8} {
		got := mustDrain(t, makeAgg(tb, group, aggs, names, workers))
		sameBatches(t, fmt.Sprintf("workers=%d", workers), got, want)
	}
}

func TestParallelAggregateMultiKeyAndDistinct(t *testing.T) {
	lowMorselRows(t)
	tb := testTable(t, "t", 900, 9)
	s := tb.Schema()
	group := []expr.Expr{colRef(s, "tag"), colRef(s, "grp")}
	aggs := []*expr.Aggregate{
		{Kind: expr.AggCount, Input: colRef(s, "id"), Distinct: true},
		{Kind: expr.AggSum, Input: colRef(s, "val")},
	}
	names := []string{"tag", "grp", "dc", "s"}
	want := mustDrain(t, makeAgg(tb, group, aggs, names, 0))
	for _, workers := range []int{2, 8} {
		got := mustDrain(t, makeAgg(tb, group, aggs, names, workers))
		sameBatches(t, fmt.Sprintf("workers=%d", workers), got, want)
	}
}

func TestSpoolSplitOverJoin(t *testing.T) {
	lowMorselRows(t)
	left := testTable(t, "l", 600, 10)
	right := testTable(t, "r", 60, 11)
	build := func(workers int) Operator {
		j := &HashJoin{Left: NewTableScan(left), Right: NewTableScan(right),
			LeftKeys: []int{0}, RightKeys: []int{1}, Type: InnerJoin, Workers: workers}
		f := &Filter{Input: j, Pred: gt(&expr.ColumnRef{Name: "val", Index: 2, Typ: storage.TypeFloat64}, -0.5)}
		return Parallelize(f, workers)
	}
	want := mustDrain(t, build(0))
	for _, workers := range []int{2, 8} {
		op := build(workers)
		if _, ok := op.(*Gather); !ok {
			t.Fatalf("workers=%d: filter over join should spool-split, got %T", workers, op)
		}
		sameBatches(t, fmt.Sprintf("workers=%d", workers), mustDrain(t, op), want)
	}
}
