package exec

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/storage"
)

// Plan-tree rendering for EXPLAIN / EXPLAIN ANALYZE.
//
// A parallel plan is a Gather over per-morsel clones of one logical
// pipeline, so rendering the physical tree verbatim would print the
// same Filter/Scan stack once per fragment. Explain instead walks SETS
// of structurally identical clones: the Gather line reports the
// fan-out, and each level below it is one line whose counters are the
// sums across the clones — which makes ANALYZE row counts identical at
// any worker count (the clones partition the same rows the serial plan
// sees). SpoolPart clones dedupe to the one shared spooled operator,
// and ctxOperator wrappers are transparent.

// Explain renders the plan tree rooted at op, one node per line,
// indented two spaces per level. With analyze, each line carries the
// node's accumulated counters (rows, batches, operator wall time).
func Explain(op Operator, analyze bool) []string {
	var lines []string
	explainSet([]Operator{op}, 0, analyze, &lines)
	return lines
}

// explainSet renders one logical node (a set of physical clones) and
// recurses into its children.
func explainSet(ops []Operator, depth int, analyze bool, lines *[]string) {
	ops = unwrapSet(ops)
	if len(ops) == 0 {
		return
	}
	line := strings.Repeat("  ", depth) + describeSet(ops)
	if analyze {
		line += statsSuffix(ops)
	}
	*lines = append(*lines, line)
	for _, kids := range childSets(ops) {
		explainSet(kids, depth+1, analyze, lines)
	}
}

// unwrapSet strips ctxOperator wrappers (they carry no plan
// information) without mutating the callers' slices.
func unwrapSet(ops []Operator) []Operator {
	out := make([]Operator, 0, len(ops))
	for _, op := range ops {
		for {
			c, ok := op.(*ctxOperator)
			if !ok {
				break
			}
			op = c.input
		}
		out = append(out, op)
	}
	return out
}

// childSets returns the child clone-sets of a logical node. Clone sets
// are type-homogeneous by construction (splitFragment clones one
// operator stack), so the children of a set are the matching child of
// each member.
func childSets(ops []Operator) [][]Operator {
	switch ops[0].(type) {
	case *Gather:
		var frags []Operator
		for _, op := range ops {
			if g, ok := op.(*Gather); ok {
				frags = append(frags, g.Fragments...)
			}
		}
		return [][]Operator{frags}
	case *SpoolPart:
		// Sibling parts share one spool: descend into each distinct
		// spooled operator exactly once.
		seen := make(map[*spool]bool)
		var sets [][]Operator
		for _, op := range ops {
			if p, ok := op.(*SpoolPart); ok && !seen[p.sp] {
				seen[p.sp] = true
				sets = append(sets, []Operator{p.sp.input})
			}
		}
		return sets
	case *UnionAll:
		// Union inputs are positional: input i of every clone merges.
		n := len(ops[0].(*UnionAll).Inputs)
		sets := make([][]Operator, n)
		for i := 0; i < n; i++ {
			for _, op := range ops {
				if u, ok := op.(*UnionAll); ok && i < len(u.Inputs) {
					sets[i] = append(sets[i], u.Inputs[i])
				}
			}
		}
		return sets
	case *HashJoin:
		var lefts, rights []Operator
		for _, op := range ops {
			if j, ok := op.(*HashJoin); ok {
				lefts = append(lefts, j.Left)
				rights = append(rights, j.Right)
			}
		}
		return [][]Operator{rights, lefts} // build side first, like the execution order
	case *NestedLoopJoin:
		var lefts, rights []Operator
		for _, op := range ops {
			if j, ok := op.(*NestedLoopJoin); ok {
				lefts = append(lefts, j.Left)
				rights = append(rights, j.Right)
			}
		}
		return [][]Operator{rights, lefts}
	}
	var kids []Operator
	for _, op := range ops {
		switch o := op.(type) {
		case *Filter:
			kids = append(kids, o.Input)
		case *Project:
			kids = append(kids, o.Input)
		case *Limit:
			kids = append(kids, o.Input)
		case *Distinct:
			kids = append(kids, o.Input)
		case *Sort:
			kids = append(kids, o.Input)
		case *Ordinal:
			kids = append(kids, o.Input)
		case *HashAggregate:
			kids = append(kids, o.Input)
		}
	}
	if len(kids) == 0 {
		return nil
	}
	return [][]Operator{kids}
}

// describeSet returns the one-line label of a logical node: operator
// name, its defining arguments, and the routing / execution-mode
// annotations EXPLAIN exists to surface.
func describeSet(ops []Operator) string {
	switch o := ops[0].(type) {
	case *TableScan:
		return describeScan(ops)
	case *BatchSource:
		return fmt.Sprintf("Materialized (%d rows)", o.Data.Len())
	case *OneRow:
		return "OneRow"
	case *Filter:
		return fmt.Sprintf("Filter (%v)", o.Pred)
	case *Project:
		names := make([]string, len(o.Out.Cols))
		for i, c := range o.Out.Cols {
			names[i] = c.Name
		}
		return fmt.Sprintf("Project (%s)", strings.Join(names, ", "))
	case *Limit:
		if o.Offset > 0 {
			return fmt.Sprintf("Limit %d offset %d", o.N, o.Offset)
		}
		return fmt.Sprintf("Limit %d", o.N)
	case *Distinct:
		return "Distinct"
	case *Ordinal:
		return fmt.Sprintf("Ordinal (%s)", o.Name)
	case *Sort:
		in := o.Input.Schema()
		keys := make([]string, len(o.Keys))
		for i, k := range o.Keys {
			keys[i] = in.Cols[k.Col].Name
			if k.Desc {
				keys[i] += " desc"
			}
		}
		return fmt.Sprintf("Sort (%s)%s", strings.Join(keys, ", "), workersNote(o.Workers))
	case *HashAggregate:
		return fmt.Sprintf("HashAggregate (%s)%s", strings.Join(o.Names, ", "), workersNote(o.Workers))
	case *HashJoin:
		ls, rs := o.Left.Schema(), o.Right.Schema()
		conds := make([]string, len(o.LeftKeys))
		for i := range o.LeftKeys {
			conds[i] = ls.Cols[o.LeftKeys[i]].Name + " = " + rs.Cols[o.RightKeys[i]].Name
		}
		s := fmt.Sprintf("HashJoin %s (%s)", joinTypeName(o.Type), strings.Join(conds, ", "))
		if o.Residual != nil {
			s += fmt.Sprintf(" residual (%v)", o.Residual)
		}
		if o.Streaming {
			s += " [streaming]"
		}
		return s + workersNote(o.Workers)
	case *NestedLoopJoin:
		s := "NestedLoopJoin " + joinTypeName(o.Type)
		if o.On != nil {
			s += fmt.Sprintf(" on (%v)", o.On)
		}
		return s
	case *UnionAll:
		return fmt.Sprintf("UnionAll (%d inputs)", len(o.Inputs))
	case *Gather:
		n := 0
		for _, op := range ops {
			if g, ok := op.(*Gather); ok {
				n += len(g.Fragments)
			}
		}
		return fmt.Sprintf("Gather (fragments=%d)", n)
	case *SpoolPart:
		return fmt.Sprintf("Spool (parts=%d)", len(ops))
	}
	return fmt.Sprintf("%T", ops[0])
}

// describeScan labels a scan clone-set with its shard routing: a
// pinned single shard (point-predicate pruning), a bind-time routed
// scan (parameterized point predicate), or a full scan over every
// shard, plus the morsel fan-out when the set holds clones.
func describeScan(ops []Operator) string {
	s0 := ops[0].(*TableScan)
	label := "Scan " + s0.Table.Name()
	nShards := 1
	if sh, ok := s0.Table.(storage.Sharded); ok {
		nShards = sh.NumShards()
	}
	shards := make(map[int]bool)
	for _, op := range ops {
		if ts, ok := op.(*TableScan); ok && ts.Shard > 0 {
			shards[ts.Shard] = true
		}
	}
	switch {
	case s0.NoSplit:
		label += fmt.Sprintf(" [1 of %d shards, routed at bind]", nShards)
	case len(ops) == 1 && s0.Shard > 0:
		label += fmt.Sprintf(" [shard %d/%d]", s0.Shard, nShards)
	case len(ops) == 1 && nShards > 1:
		label += fmt.Sprintf(" [%d shards]", nShards)
	case len(ops) > 1 && len(shards) > 1:
		label += fmt.Sprintf(" [%d shards, %d morsels]", len(shards), len(ops))
	case len(ops) > 1:
		label += fmt.Sprintf(" [%d morsels]", len(ops))
	}
	return label
}

func joinTypeName(t JoinType) string {
	switch t {
	case InnerJoin:
		return "inner"
	case LeftJoin:
		return "left"
	case CrossJoin:
		return "cross"
	}
	return fmt.Sprintf("JoinType(%d)", t)
}

func workersNote(w int) string {
	if w > 1 {
		return fmt.Sprintf(" [workers=%d]", w)
	}
	return ""
}

// statsSuffix sums the counters across a clone set — the rows of a
// logical node are partitioned over its clones, so the sums match the
// serial plan's counts exactly. Clone wall times also sum (total
// operator time, which for concurrent clones legitimately exceeds the
// statement's wall clock).
func statsSuffix(ops []Operator) string {
	var rows, batches, nanos, spillBytes, spillRuns int64
	for _, op := range ops {
		if st := StatsOf(op); st != nil {
			rows += st.Rows.Load()
			batches += st.Batches.Load()
			nanos += st.Nanos.Load()
			spillBytes += st.SpillBytes.Load()
			spillRuns += st.SpillRuns.Load()
		}
	}
	if _, ok := ops[0].(*SpoolPart); ok {
		// Sibling parts share one spool; count each spool's overflow once.
		seen := make(map[*spool]bool)
		for _, op := range ops {
			if p, ok := op.(*SpoolPart); ok && !seen[p.sp] {
				seen[p.sp] = true
				b, r := p.SpillStats()
				spillBytes += b
				spillRuns += r
			}
		}
	}
	s := fmt.Sprintf(" (rows=%d batches=%d time=%s)",
		rows, batches, time.Duration(nanos).Round(time.Microsecond))
	if spillRuns > 0 {
		s += fmt.Sprintf(" spilled=%dB/%druns", spillBytes, spillRuns)
	}
	if _, ok := ops[0].(*HashJoin); ok {
		var build, probe int64
		for _, op := range ops {
			if jj, ok := op.(*HashJoin); ok {
				b, p := jj.BuildProbeRows()
				build += b
				probe += p
			}
		}
		s += fmt.Sprintf(" [build=%d probe=%d]", build, probe)
	}
	return s
}

// OpReport is one logical plan node's accumulated counters, in
// pre-order plan position — the structured form of EXPLAIN ANALYZE
// that the statement tracer turns into per-operator spans. Nanos is
// inclusive of child pulls (an operator's clock runs while it waits on
// its input), so reports must not be summed across depths.
type OpReport struct {
	Name       string // the EXPLAIN describe line, without counters
	Depth      int
	Rows       int64
	Batches    int64
	Nanos      int64
	SpillBytes int64
	SpillRuns  int64
}

// StatsReport walks the plan like Explain does — clone sets collapse
// to one logical node whose counters are the sums across clones — and
// returns the per-node reports.
func StatsReport(op Operator) []OpReport {
	var out []OpReport
	reportSet([]Operator{op}, 0, &out)
	return out
}

func reportSet(ops []Operator, depth int, out *[]OpReport) {
	ops = unwrapSet(ops)
	if len(ops) == 0 {
		return
	}
	r := OpReport{Name: describeSet(ops), Depth: depth}
	for _, op := range ops {
		if st := StatsOf(op); st != nil {
			r.Rows += st.Rows.Load()
			r.Batches += st.Batches.Load()
			r.Nanos += st.Nanos.Load()
			r.SpillBytes += st.SpillBytes.Load()
			r.SpillRuns += st.SpillRuns.Load()
		}
	}
	if _, ok := ops[0].(*SpoolPart); ok {
		seen := make(map[*spool]bool)
		for _, op := range ops {
			if p, ok := op.(*SpoolPart); ok && !seen[p.sp] {
				seen[p.sp] = true
				b, rn := p.SpillStats()
				r.SpillBytes += b
				r.SpillRuns += rn
			}
		}
	}
	*out = append(*out, r)
	for _, kids := range childSets(ops) {
		reportSet(kids, depth+1, out)
	}
}

// Summary is the compact single-line plan shape recorded by the
// slow-query log: operator names with their child structure, no
// predicates or counters.
func Summary(op Operator) string {
	switch o := op.(type) {
	case *ctxOperator:
		return Summary(o.input)
	case *TableScan:
		return "Scan(" + o.Table.Name() + ")"
	case *BatchSource:
		return "Materialized"
	case *OneRow:
		return "OneRow"
	case *Filter:
		return "Filter(" + Summary(o.Input) + ")"
	case *Project:
		return "Project(" + Summary(o.Input) + ")"
	case *Limit:
		return "Limit(" + Summary(o.Input) + ")"
	case *Distinct:
		return "Distinct(" + Summary(o.Input) + ")"
	case *Sort:
		return "Sort(" + Summary(o.Input) + ")"
	case *Ordinal:
		return "Ordinal(" + Summary(o.Input) + ")"
	case *HashAggregate:
		return "Agg(" + Summary(o.Input) + ")"
	case *HashJoin:
		return "HashJoin(" + Summary(o.Left) + "," + Summary(o.Right) + ")"
	case *NestedLoopJoin:
		return "NLJoin(" + Summary(o.Left) + "," + Summary(o.Right) + ")"
	case *UnionAll:
		parts := make([]string, len(o.Inputs))
		for i, in := range o.Inputs {
			parts[i] = Summary(in)
		}
		return "Union(" + strings.Join(parts, ",") + ")"
	case *Gather:
		return fmt.Sprintf("Gather[%d](%s)", len(o.Fragments), Summary(o.Fragments[0]))
	case *SpoolPart:
		return "Spool(" + Summary(o.sp.input) + ")"
	}
	return fmt.Sprintf("%T", op)
}
