package exec

import (
	"fmt"

	"repro/internal/storage"
)

// Support for cached (prepared) plans. A plan can be executed again
// only if every operator in it fully resets in Open and reads no data
// captured at plan time; Cacheable whitelists exactly those shapes.
// Rebind then repoints every TableScan at the current execution's
// version set (an MVCC snapshot) before each run.

// Cacheable reports whether the tree rooted at op can be executed more
// than once. The whitelist is conservative: every listed operator's
// Open re-initializes all iteration state, and none of them hold data
// materialized at plan time. Notable exclusions:
//
//   - BatchSource serves a batch captured at plan time (CTE results,
//     VALUES): re-running it would replay stale data.
//   - Unknown operator types default to false.
//
// SpoolPart/spool keep a completed drain and serve it from memory on
// re-open; Rebind resets the shared spool so each checkout replays the
// base against the new bindings instead of serving stale rows.
func Cacheable(op Operator) bool {
	switch o := op.(type) {
	case *TableScan, *OneRow:
		return true
	case *Filter:
		return Cacheable(o.Input)
	case *Project:
		return Cacheable(o.Input)
	case *Limit:
		return Cacheable(o.Input)
	case *Distinct:
		return Cacheable(o.Input)
	case *Sort:
		return Cacheable(o.Input)
	case *HashAggregate:
		return Cacheable(o.Input)
	case *Ordinal:
		return Cacheable(o.Input)
	case *HashJoin:
		return Cacheable(o.Left) && Cacheable(o.Right)
	case *NestedLoopJoin:
		return Cacheable(o.Left) && Cacheable(o.Right)
	case *UnionAll:
		for _, in := range o.Inputs {
			if !Cacheable(in) {
				return false
			}
		}
		return true
	case *Gather:
		for _, f := range o.Fragments {
			if !Cacheable(f) {
				return false
			}
		}
		return true
	case *SpoolPart:
		return Cacheable(o.sp.input)
	case *ctxOperator:
		return Cacheable(o.input)
	default:
		return false
	}
}

// Rebind repoints every TableScan in the tree at the table data lookup
// returns for its current table's name. The caller guarantees the new
// data has the same schema (the engine keys cached plans by catalog
// version, so any DDL invalidates the plan instead of reaching here);
// scan output schemas are therefore kept as planned.
func Rebind(op Operator, lookup func(string) (storage.TableData, error)) error {
	switch o := op.(type) {
	case *TableScan:
		td, err := lookup(o.Table.Name())
		if err != nil {
			return err
		}
		o.Table = td
		return nil
	case *OneRow:
		return nil
	case *Filter:
		return Rebind(o.Input, lookup)
	case *Project:
		return Rebind(o.Input, lookup)
	case *Limit:
		return Rebind(o.Input, lookup)
	case *Distinct:
		return Rebind(o.Input, lookup)
	case *Sort:
		return Rebind(o.Input, lookup)
	case *HashAggregate:
		return Rebind(o.Input, lookup)
	case *Ordinal:
		return Rebind(o.Input, lookup)
	case *HashJoin:
		if err := Rebind(o.Left, lookup); err != nil {
			return err
		}
		return Rebind(o.Right, lookup)
	case *NestedLoopJoin:
		if err := Rebind(o.Left, lookup); err != nil {
			return err
		}
		return Rebind(o.Right, lookup)
	case *UnionAll:
		for _, in := range o.Inputs {
			if err := Rebind(in, lookup); err != nil {
				return err
			}
		}
		return nil
	case *Gather:
		for _, f := range o.Fragments {
			if err := Rebind(f, lookup); err != nil {
				return err
			}
		}
		return nil
	case *SpoolPart:
		// Sibling parts share the spool; reset is idempotent and the
		// repeated rebind of the base re-resolves the same tables.
		o.sp.reset()
		return Rebind(o.sp.input, lookup)
	case *ctxOperator:
		return Rebind(o.input, lookup)
	default:
		return fmt.Errorf("exec: cannot rebind %T (plan should not have been cached)", op)
	}
}
