package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sched"
	"repro/internal/sql"
	"repro/internal/storage"
)

// Planner lowers SQL statements to executor plans.
type Planner struct {
	Catalog *catalog.Catalog
	Funcs   *expr.Registry
	// Parallelism is the per-statement executor worker budget: the
	// planner rewrites stateless scan→filter→project fragments into
	// morsel-parallel Gather pipelines and sets the worker count on
	// hash joins and aggregates (see internal/exec/parallel.go).
	// 0 or 1 plans today's serial pipelines.
	Parallelism int
	// Budget is the process-wide extra-worker budget installed on every
	// parallel operator this planner emits (nil = unlimited). Operators
	// keep their caller's goroutine for free and draw extras from it,
	// so concurrent statements share cores instead of oversubscribing.
	Budget *sched.Budget
	// Mem is the process-wide executor memory pool (nil = unlimited).
	// Each statement plans against a child grant capped at its work_mem
	// (WorkMem, or a per-statement override) that draws down this pool;
	// blocking operators reserve from the grant and spill to disk when
	// a reservation is denied.
	Mem *sched.MemBudget
	// WorkMem is the default per-statement memory grant in bytes
	// (0 = unlimited). SET work_mem overrides it per statement.
	WorkMem int64
}

// New returns a planner over the given catalog and function registry.
func New(cat *catalog.Catalog, funcs *expr.Registry) *Planner {
	return &Planner{Catalog: cat, Funcs: funcs}
}

// SerialLimitMax is the largest LIMIT+OFFSET the planner keeps serial
// and streaming for early exit. A limit needing at most this many rows
// reads O(limit) from its sources on one worker; a larger limit keeps
// the parallel (materializing) plan, whose fan-out amortizes over the
// bigger result.
var SerialLimitMax = int64(8 * 1024)

// TableSource resolves the column set a statement reads for each table
// name — the MVCC seam. nil means live catalog tables (the writer-side
// and legacy-latch paths); the engine passes a pinned mvcc snapshot so
// every scan in the plan reads one immutable version set.
type TableSource interface {
	Table(name string) (storage.TableData, error)
}

// PlanSelect lowers a SELECT statement to an operator tree.
func (p *Planner) PlanSelect(st *sql.SelectStmt) (exec.Operator, error) {
	return p.PlanSelectWorkers(st, 0)
}

// PlanSelectWorkers is PlanSelect with a per-statement worker
// override: workers > 0 replaces the planner's Parallelism for this
// one statement (sessions use it for SET parallelism and the server's
// per-statement cap). 0 means the planner default.
func (p *Planner) PlanSelectWorkers(st *sql.SelectStmt, workers int) (exec.Operator, error) {
	return p.PlanSelectSource(st, workers, nil)
}

// PlanSelectSource is PlanSelectWorkers with an explicit table source:
// every base-table scan in the plan reads through src instead of the
// live catalog, so the whole statement sees one consistent version set
// (src == nil restores live-catalog resolution).
func (p *Planner) PlanSelectSource(st *sql.SelectStmt, workers int, src TableSource) (exec.Operator, error) {
	return p.PlanSelectParams(st, workers, src, nil)
}

// PlanSelectParams is PlanSelectSource with positional parameters in
// scope — a one-shot parameterized plan (PrepareSelect builds the
// reusable kind). ps, when non-nil, must already have its argument
// values bound; parameter-keyed point scans are routed immediately.
func (p *Planner) PlanSelectParams(st *sql.SelectStmt, workers int, src TableSource, ps *Params) (exec.Operator, error) {
	return p.PlanSelectMem(st, workers, -1, src, ps)
}

// PlanSelectMem is PlanSelectParams with a per-statement work_mem
// override: workMem >= 0 replaces the planner's WorkMem for this one
// statement (0 = unlimited); a negative value means the planner
// default. Sessions use it for SET work_mem.
func (p *Planner) PlanSelectMem(st *sql.SelectStmt, workers int, workMem int64, src TableSource, ps *Params) (exec.Operator, error) {
	if workers <= 0 {
		workers = p.Parallelism
	}
	ctx := &planCtx{p: p, workers: workers, fullWorkers: workers, mem: p.statementMem(workMem), ctes: make(map[string]*storage.Batch), src: src, params: ps}
	root, err := ctx.planSelect(st)
	if err != nil {
		return nil, err
	}
	if ps != nil {
		bindRoutes(ctx.routes, ps.Slot.Args())
	}
	return root, nil
}

// statementMem builds the statement's memory grant: a child of the
// engine pool capped at the resolved work_mem. The grant is owned by
// the plan — operators release every reservation when they close, so
// a cached plan reuses it across executions without leaking pool
// bytes.
func (p *Planner) statementMem(workMem int64) *sched.MemBudget {
	if workMem < 0 {
		workMem = p.WorkMem
	}
	return sched.StatementMem(p.Mem, workMem)
}

// planCtx carries per-statement state (materialized CTEs).
type planCtx struct {
	p       *Planner
	src     TableSource // non-nil: resolve base tables through it
	workers int
	// mem is the statement's memory grant, installed on every blocking
	// operator (nil = unaccounted).
	mem *sched.MemBudget
	// fullWorkers remembers the statement's configured parallelism so
	// a blocking subtree under a serialized LIMIT can get it back.
	fullWorkers int
	ctes        map[string]*storage.Batch
	// params, when non-nil, puts positional parameters in scope and
	// collects bind-time shard routes (see paramRouteFor).
	params *Params
	routes []Route
	// serial marks the subtree under a LIMIT (with no blocking ORDER
	// BY): operators there are planned serial and streaming — no
	// Gathers, spools or materializing probes — so the LIMIT pulls
	// O(limit) rows from the sources instead of paying for a full
	// parallel drain. Early exit beats parallelism there.
	serial bool
}

// selectAggregates reports whether any core of the statement groups or
// aggregates — a blocking shape that must consume its whole input, so
// a LIMIT above it cannot short-circuit the sources.
func selectAggregates(st *sql.SelectStmt) bool {
	for _, core := range st.Cores {
		if len(core.GroupBy) > 0 || core.Having != nil {
			return true
		}
		var aggs []*sql.FuncExpr
		seen := make(map[string]bool)
		for _, it := range core.Items {
			if !it.Star {
				collectAggs(it.E, &aggs, seen)
			}
		}
		if len(aggs) > 0 {
			return true
		}
	}
	return false
}

func (c *planCtx) planSelect(st *sql.SelectStmt) (exec.Operator, error) {
	// Materialize CTEs in order; each sees the previous ones.
	saved := make(map[string]*storage.Batch, len(c.ctes))
	for k, v := range c.ctes {
		saved[k] = v
	}
	defer func() { c.ctes = saved }()

	for _, cte := range st.With {
		op, err := c.planSelect(cte.Select)
		if err != nil {
			return nil, fmt.Errorf("plan: CTE %s: %w", cte.Name, err)
		}
		data, err := exec.Drain(op)
		if err != nil {
			return nil, fmt.Errorf("plan: CTE %s: %w", cte.Name, err)
		}
		c.ctes[strings.ToLower(cte.Name)] = data
	}

	// A small LIMIT without a blocking shape beneath it restores the
	// early-exit contract: everything beneath it is planned serial so
	// the limit stops pulling from the sources after O(limit) rows.
	// Blocking shapes are exempt — an ORDER BY's sort and a GROUP
	// BY's aggregate must consume their whole input no matter what,
	// so serializing them buys no early exit and costs all the
	// parallelism — and past SerialLimitMax rows the saved source
	// reads no longer outweigh losing fan-out either.
	blocking := selectAggregates(st) || len(st.OrderBy) > 0
	if st.Limit != nil && !blocking {
		need := *st.Limit
		if st.Offset != nil {
			need += *st.Offset
		}
		if need >= 0 && need <= SerialLimitMax {
			savedWorkers, savedSerial := c.workers, c.serial
			c.workers, c.serial = 1, true
			defer func() { c.workers, c.serial = savedWorkers, savedSerial }()
		}
	} else if c.serial && blocking {
		// A blocking subquery (aggregate fold or sort) inherited a
		// serialized context from an outer LIMIT; it must consume its
		// whole input regardless, so give the subtree the statement's
		// full worker budget back.
		savedWorkers, savedSerial := c.workers, c.serial
		c.workers, c.serial = c.fullWorkers, false
		defer func() { c.workers, c.serial = savedWorkers, savedSerial }()
	}

	var op exec.Operator
	var itemStrings []string
	for i, core := range st.Cores {
		coreOp, strs, err := c.planCore(core)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			op = coreOp
			itemStrings = strs
		} else {
			if u, ok := op.(*exec.UnionAll); ok {
				u.Inputs = append(u.Inputs, coreOp)
			} else {
				op = &exec.UnionAll{Inputs: []exec.Operator{op, coreOp}}
			}
		}
	}

	if len(st.OrderBy) > 0 {
		keys, err := bindOrderBy(st.OrderBy, op.Schema(), itemStrings)
		if err != nil {
			// ORDER BY may reference input columns that are not
			// projected (ORDER BY id with SELECT name ...). For a
			// single non-DISTINCT core, re-plan with hidden sort
			// columns appended, sort, then project them away.
			op2, err2 := c.planWithHiddenSortColumns(st)
			if err2 != nil {
				return nil, err // report the original binding error
			}
			op = op2
		} else {
			op = &exec.Sort{Input: op, Keys: keys, Workers: c.workers, Budget: c.p.Budget, Mem: c.mem}
		}
	}
	if st.Limit != nil || st.Offset != nil {
		lim := int64(1<<62 - 1)
		if st.Limit != nil {
			lim = *st.Limit
		}
		var off int64
		if st.Offset != nil {
			off = *st.Offset
		}
		op = &exec.Limit{Input: op, N: lim, Offset: off}
	}
	return op, nil
}

// planWithHiddenSortColumns re-plans a single-core SELECT with the
// ORDER BY expressions appended as hidden projection columns, sorts on
// them, and strips them with a final projection.
func (c *planCtx) planWithHiddenSortColumns(st *sql.SelectStmt) (exec.Operator, error) {
	if len(st.Cores) != 1 || st.Cores[0].Distinct {
		return nil, fmt.Errorf("plan: ORDER BY expression not in select list")
	}
	core := *st.Cores[0]
	core.Items = append([]sql.SelectItem(nil), core.Items...)
	for i, it := range st.OrderBy {
		core.Items = append(core.Items, sql.SelectItem{E: it.E, Alias: fmt.Sprintf("$sort%d", i)})
	}
	op, _, err := c.planCore(&core)
	if err != nil {
		return nil, err
	}
	schema := op.Schema()
	// Star items may have expanded to more than `base` columns; the
	// hidden sort columns are always the last len(OrderBy) ones.
	visible := schema.Len() - len(st.OrderBy)
	keys := make([]storage.SortKey, len(st.OrderBy))
	for i := range st.OrderBy {
		keys[i] = storage.SortKey{Col: visible + i, Desc: st.OrderBy[i].Desc}
	}
	var sorted exec.Operator = &exec.Sort{Input: op, Keys: keys, Workers: c.workers, Budget: c.p.Budget, Mem: c.mem}
	exprs := make([]expr.Expr, visible)
	names := make([]string, visible)
	for i := 0; i < visible; i++ {
		exprs[i] = &expr.ColumnRef{Name: schema.Cols[i].Name, Index: i, Typ: schema.Cols[i].Type}
		names[i] = schema.Cols[i].Name
	}
	return exec.NewProject(sorted, exprs, names)
}

// bindOrderBy resolves ORDER BY items against the output schema: by
// ordinal, by output column name/alias, or by printed-expression match
// with a select item.
func bindOrderBy(items []sql.OrderItem, schema storage.Schema, itemStrings []string) ([]storage.SortKey, error) {
	keys := make([]storage.SortKey, 0, len(items))
	for _, it := range items {
		idx := -1
		switch n := it.E.(type) {
		case *sql.IntLit:
			if n.V < 1 || n.V > int64(schema.Len()) {
				return nil, fmt.Errorf("plan: ORDER BY position %d out of range", n.V)
			}
			idx = int(n.V - 1)
		case *sql.Ident:
			if n.Qualifier == "" {
				idx = schema.IndexOf(n.Name)
			}
		}
		if idx < 0 {
			want := it.E.String()
			for i, s := range itemStrings {
				if s == want {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("plan: ORDER BY expression %s must appear in the select list", it.E)
		}
		keys = append(keys, storage.SortKey{Col: idx, Desc: it.Desc})
	}
	return keys, nil
}

// splitConjuncts flattens a tree of ANDs into a conjunct list.
func splitConjuncts(e sql.Expr, into []sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.BinExpr); ok && b.Op == "AND" {
		return splitConjuncts(b.R, splitConjuncts(b.L, into))
	}
	return append(into, e)
}

func andAll(conjuncts []sql.Expr) sql.Expr {
	if len(conjuncts) == 0 {
		return nil
	}
	out := conjuncts[0]
	for _, c := range conjuncts[1:] {
		out = &sql.BinExpr{Op: "AND", L: out, R: c}
	}
	return out
}

// bindable reports whether e binds cleanly in the scope.
func (c *planCtx) bindable(e sql.Expr, sc *Scope) bool {
	_, err := bindExpr(e, sc, c.p.Funcs, nil, c.params)
	return err == nil
}

// equiKey recognizes `l.col = r.col` conjuncts across two scopes and
// returns the key positions (left-side position, right-side position).
func equiKey(e sql.Expr, ls, rs *Scope) (int, int, bool) {
	b, ok := e.(*sql.BinExpr)
	if !ok || b.Op != "=" {
		return 0, 0, false
	}
	li, lok := identIn(b.L, ls)
	ri, rok := identIn(b.R, rs)
	if lok && rok {
		return li, ri, true
	}
	li2, lok2 := identIn(b.R, ls)
	ri2, rok2 := identIn(b.L, rs)
	if lok2 && rok2 {
		return li2, ri2, true
	}
	return 0, 0, false
}

func identIn(e sql.Expr, sc *Scope) (int, bool) {
	id, ok := e.(*sql.Ident)
	if !ok {
		return 0, false
	}
	i, _, err := sc.Resolve(id.Qualifier, id.Name)
	if err != nil {
		return 0, false
	}
	return i, true
}

// planTableRef lowers one FROM item to (operator, scope).
func (c *planCtx) planTableRef(ref sql.TableRef) (exec.Operator, *Scope, error) {
	switch t := ref.(type) {
	case *sql.BaseTable:
		qual := t.Alias
		if qual == "" {
			qual = t.Name
		}
		if data, ok := c.ctes[strings.ToLower(t.Name)]; ok {
			return &exec.BatchSource{Data: data}, NewScope(qual, data.Schema), nil
		}
		if c.src != nil {
			td, err := c.src.Table(t.Name)
			if err != nil {
				return nil, nil, err
			}
			return exec.NewTableScan(td), NewScope(qual, td.Schema()), nil
		}
		tb, err := c.p.Catalog.Get(t.Name)
		if err != nil {
			return nil, nil, err
		}
		return exec.NewTableScan(tb), NewScope(qual, tb.Schema()), nil
	case *sql.DerivedTable:
		op, err := c.planSelect(t.Select)
		if err != nil {
			return nil, nil, err
		}
		return op, NewScope(t.Alias, op.Schema()), nil
	case *sql.JoinTable:
		return c.planJoin(t)
	default:
		return nil, nil, fmt.Errorf("plan: unsupported table reference %T", ref)
	}
}

func (c *planCtx) planJoin(j *sql.JoinTable) (exec.Operator, *Scope, error) {
	lop, ls, err := c.planTableRef(j.Left)
	if err != nil {
		return nil, nil, err
	}
	rop, rs, err := c.planTableRef(j.Right)
	if err != nil {
		return nil, nil, err
	}
	combined := Concat(ls, rs)
	if j.Kind == sql.JoinCross {
		return &exec.NestedLoopJoin{Left: lop, Right: rop, Type: exec.CrossJoin, Workers: c.workers, Budget: c.p.Budget, Mem: c.mem}, combined, nil
	}
	jt := exec.InnerJoin
	if j.Kind == sql.JoinLeft {
		jt = exec.LeftJoin
	}
	conjuncts := splitConjuncts(j.On, nil)
	var lkeys, rkeys []int
	var residual []sql.Expr
	for _, cj := range conjuncts {
		if lk, rk, ok := equiKey(cj, ls, rs); ok {
			lkeys = append(lkeys, lk)
			rkeys = append(rkeys, rk)
		} else {
			residual = append(residual, cj)
		}
	}
	var resExpr expr.Expr
	if rest := andAll(residual); rest != nil {
		resExpr, err = bindExpr(rest, combined, c.p.Funcs, nil, c.params)
		if err != nil {
			return nil, nil, err
		}
	}
	if len(lkeys) > 0 {
		// equiKey resolves each side against its own scope, so both key
		// lists are already operator-local positions.
		return &exec.HashJoin{
			Left: lop, Right: rop,
			LeftKeys: lkeys, RightKeys: rkeys,
			Type: jt, Residual: resExpr,
			Workers: c.workers, Budget: c.p.Budget, Mem: c.mem,
			Streaming: c.serial,
		}, combined, nil
	}
	return &exec.NestedLoopJoin{Left: lop, Right: rop, Type: jt, On: resExpr, Workers: c.workers, Budget: c.p.Budget, Mem: c.mem}, combined, nil
}

// planCore lowers one SELECT core; it returns the operator and the
// printed select-item strings (for ORDER BY matching).
func (c *planCtx) planCore(core *sql.SelectCore) (exec.Operator, []string, error) {
	var op exec.Operator
	var sc *Scope

	pending := []sql.Expr{}
	if core.Where != nil {
		pending = splitConjuncts(core.Where, nil)
	}

	if len(core.From) == 0 {
		op = &exec.OneRow{}
		sc = &Scope{Cols: []ScopeCol{{Qualifier: "$system", Name: "$one", Type: storage.TypeInt64, Hidden: true}}}
	} else {
		var err error
		op, sc, err = c.planTableRef(core.From[0])
		if err != nil {
			return nil, nil, err
		}
		op, pending, err = c.pushDown(op, sc, pending)
		if err != nil {
			return nil, nil, err
		}
		op = exec.ParallelizeMem(op, c.workers, c.p.Budget, c.mem)
		for _, item := range core.From[1:] {
			rop, rsc, err := c.planTableRef(item)
			if err != nil {
				return nil, nil, err
			}
			rop, pending, err = c.pushDown(rop, rsc, pending)
			if err != nil {
				return nil, nil, err
			}
			rop = exec.ParallelizeMem(rop, c.workers, c.p.Budget, c.mem)
			// Promote cross-scope equality conjuncts to hash-join keys.
			var lkeys, rkeys []int
			var rest []sql.Expr
			for _, cj := range pending {
				if lk, rk, ok := equiKey(cj, sc, rsc); ok {
					lkeys = append(lkeys, lk)
					rkeys = append(rkeys, rk)
				} else {
					rest = append(rest, cj)
				}
			}
			pending = rest
			combined := Concat(sc, rsc)
			if len(lkeys) > 0 {
				op = &exec.HashJoin{Left: op, Right: rop,
					LeftKeys: lkeys, RightKeys: rkeys, Type: exec.InnerJoin,
					Workers: c.workers, Budget: c.p.Budget, Mem: c.mem,
					Streaming: c.serial}
			} else {
				op = &exec.NestedLoopJoin{Left: op, Right: rop, Type: exec.CrossJoin, Workers: c.workers, Budget: c.p.Budget, Mem: c.mem}
			}
			sc = combined
			// Apply conjuncts that became bindable after this join.
			op, pending, err = c.pushDown(op, sc, pending)
			if err != nil {
				return nil, nil, err
			}
		}
	}

	// Whatever WHERE conjuncts remain must bind on the full scope.
	if rest := andAll(pending); rest != nil {
		pred, err := bindExpr(rest, sc, c.p.Funcs, nil, c.params)
		if err != nil {
			return nil, nil, err
		}
		if pred.Type() != storage.TypeBool {
			return nil, nil, fmt.Errorf("plan: WHERE must be boolean, got %s", pred.Type())
		}
		op = &exec.Filter{Input: op, Pred: pred}
	}

	// Aggregate detection.
	var aggASTs []*sql.FuncExpr
	seen := make(map[string]bool)
	for _, it := range core.Items {
		if !it.Star {
			collectAggs(it.E, &aggASTs, seen)
		}
	}
	if core.Having != nil {
		collectAggs(core.Having, &aggASTs, seen)
	}

	if len(aggASTs) > 0 || len(core.GroupBy) > 0 {
		return c.planAggregate(op, sc, core, aggASTs)
	}
	if core.Having != nil {
		return nil, nil, fmt.Errorf("plan: HAVING requires GROUP BY or aggregates")
	}
	return c.planProjection(op, sc, core, nil)
}

// pushDown applies every pending conjunct that binds on the given scope
// as a filter, returning the filtered operator and the remaining list.
// When the operator is a scan of a hash-partitioned table and one of
// the applicable conjuncts is a point predicate on the partition key,
// the scan is routed to the owning shard: the filter still runs (it
// keeps the semantics exact), but only one shard is read — point
// lookups, and any aggregate sitting above such a filter, become
// shard-local.
func (c *planCtx) pushDown(op exec.Operator, sc *Scope, pending []sql.Expr) (exec.Operator, []sql.Expr, error) {
	var applicable []sql.Expr
	var rest []sql.Expr
	for _, cj := range pending {
		if c.bindable(cj, sc) {
			applicable = append(applicable, cj)
		} else {
			rest = append(rest, cj)
		}
	}
	if ts, ok := op.(*exec.TableScan); ok && ts.Shard == 0 && !ts.NoSplit {
		if sh, ok := ts.Table.(storage.Sharded); ok && sh.NumShards() > 1 && sh.ShardKey() >= 0 {
			for _, cj := range applicable {
				if s, ok := shardForConjunct(cj, sc, sh); ok {
					ts.Shard = s + 1
					break
				}
				// A point predicate against a parameter routes too, but
				// the owning shard is only known at bind time: record a
				// route and keep the scan a single re-routable fragment.
				if n, ok := c.paramRouteFor(cj, sc, sh); ok {
					ts.NoSplit = true
					c.routes = append(c.routes, Route{
						Scan: ts, N: n,
						Key: sh.Schema().Cols[sh.ShardKey()].Type,
					})
					break
				}
			}
		}
	}
	if pred := andAll(applicable); pred != nil {
		bound, err := bindExpr(pred, sc, c.p.Funcs, nil, c.params)
		if err != nil {
			return nil, nil, err
		}
		if bound.Type() != storage.TypeBool {
			return nil, nil, fmt.Errorf("plan: WHERE must be boolean, got %s", bound.Type())
		}
		op = &exec.Filter{Input: op, Pred: bound}
	}
	return op, rest, nil
}

// shardForConjunct recognizes `key = literal` (either operand order)
// where key resolves to the table's partition column, and returns the
// owning shard. Only literals whose natural type matches the key
// column (plus the safe INTEGER→DOUBLE widening, which HashValue
// hashes identically) qualify — cross-type comparisons fall back to a
// full scan rather than risk a coercion mismatch.
func shardForConjunct(e sql.Expr, sc *Scope, sh storage.Sharded) (int, bool) {
	b, ok := e.(*sql.BinExpr)
	if !ok || b.Op != "=" {
		return 0, false
	}
	try := func(idExpr, litExpr sql.Expr) (int, bool) {
		i, ok := identIn(idExpr, sc)
		if !ok || i != sh.ShardKey() {
			return 0, false
		}
		kt := sh.Schema().Cols[sh.ShardKey()].Type
		var v storage.Value
		switch l := litExpr.(type) {
		case *sql.IntLit:
			if kt != storage.TypeInt64 && kt != storage.TypeFloat64 {
				return 0, false
			}
			v = storage.Int64(l.V)
		case *sql.FloatLit:
			if kt != storage.TypeFloat64 {
				return 0, false
			}
			v = storage.Float64(l.V)
		case *sql.StringLit:
			if kt != storage.TypeString {
				return 0, false
			}
			v = storage.Str(l.V)
		case *sql.BoolLit:
			if kt != storage.TypeBool {
				return 0, false
			}
			v = storage.Bool(l.V)
		default:
			return 0, false
		}
		cv, err := storage.Coerce(v, kt)
		if err != nil {
			return 0, false
		}
		return int(storage.HashValue(cv) % uint64(sh.NumShards())), true
	}
	if s, ok := try(b.L, b.R); ok {
		return s, true
	}
	return try(b.R, b.L)
}

// paramRouteFor recognizes `key = $n` (either operand order) where key
// resolves to the table's partition column and the parameter's recorded
// type matches the key column under the same rules shardForConjunct
// applies to literals. It returns the 1-based parameter index; the
// shard itself is computed per execution from the bound value.
func (c *planCtx) paramRouteFor(e sql.Expr, sc *Scope, sh storage.Sharded) (int, bool) {
	if c.params == nil {
		return 0, false
	}
	b, ok := e.(*sql.BinExpr)
	if !ok || b.Op != "=" {
		return 0, false
	}
	try := func(idExpr, pExpr sql.Expr) (int, bool) {
		i, ok := identIn(idExpr, sc)
		if !ok || i != sh.ShardKey() {
			return 0, false
		}
		p, ok := pExpr.(*sql.Param)
		if !ok || p.N < 1 || p.N > len(c.params.Types) {
			return 0, false
		}
		kt := sh.Schema().Cols[sh.ShardKey()].Type
		switch c.params.Types[p.N-1] {
		case storage.TypeInt64:
			if kt != storage.TypeInt64 && kt != storage.TypeFloat64 {
				return 0, false
			}
		case storage.TypeFloat64:
			if kt != storage.TypeFloat64 {
				return 0, false
			}
		case storage.TypeString:
			if kt != storage.TypeString {
				return 0, false
			}
		case storage.TypeBool:
			if kt != storage.TypeBool {
				return 0, false
			}
		default:
			return 0, false
		}
		return p.N, true
	}
	if n, ok := try(b.L, b.R); ok {
		return n, true
	}
	return try(b.R, b.L)
}

// planProjection binds the select items over the (possibly post-
// aggregate) scope and applies DISTINCT.
func (c *planCtx) planProjection(op exec.Operator, sc *Scope, core *sql.SelectCore, ag *aggScope) (exec.Operator, []string, error) {
	var exprs []expr.Expr
	var names []string
	var strs []string
	for _, it := range core.Items {
		if it.Star {
			if ag != nil {
				return nil, nil, fmt.Errorf("plan: SELECT * cannot be combined with GROUP BY")
			}
			for _, i := range sc.Visible(it.StarTable) {
				col := sc.Cols[i]
				exprs = append(exprs, &expr.ColumnRef{Name: col.Name, Index: i, Typ: col.Type})
				names = append(names, col.Name)
				strs = append(strs, col.Name)
			}
			continue
		}
		bound, err := bindExpr(it.E, sc, c.p.Funcs, ag, c.params)
		if err != nil {
			return nil, nil, err
		}
		name := it.Alias
		if name == "" {
			if id, ok := it.E.(*sql.Ident); ok {
				name = id.Name
			} else {
				name = it.E.String()
			}
		}
		exprs = append(exprs, bound)
		names = append(names, name)
		strs = append(strs, it.E.String())
	}
	proj, err := exec.NewProject(op, exprs, names)
	if err != nil {
		return nil, nil, err
	}
	// The projection is stateless: fuse it into its input's parallel
	// fragments (or spool a join/aggregate input into morsels) so the
	// expression evaluation runs on all workers.
	op = exec.ParallelizeMem(proj, c.workers, c.p.Budget, c.mem)
	if core.Distinct {
		op = &exec.Distinct{Input: op, Mem: c.mem}
	}
	return op, strs, nil
}

// planAggregate lowers the GROUP BY / aggregate path.
func (c *planCtx) planAggregate(op exec.Operator, sc *Scope, core *sql.SelectCore, aggASTs []*sql.FuncExpr) (exec.Operator, []string, error) {
	groupExprs := make([]expr.Expr, len(core.GroupBy))
	names := make([]string, 0, len(core.GroupBy)+len(aggASTs))
	postCols := make([]ScopeCol, 0, len(core.GroupBy)+len(aggASTs))
	ag := &aggScope{byString: make(map[string]*expr.ColumnRef)}

	for i, g := range core.GroupBy {
		bound, err := bindExpr(g, sc, c.p.Funcs, nil, c.params)
		if err != nil {
			return nil, nil, err
		}
		groupExprs[i] = bound
		var col ScopeCol
		if id, ok := g.(*sql.Ident); ok {
			pos, typ, err := sc.Resolve(id.Qualifier, id.Name)
			if err != nil {
				return nil, nil, err
			}
			col = sc.Cols[pos]
			col.Type = typ
		} else {
			col = ScopeCol{Name: fmt.Sprintf("g%d", i), Type: bound.Type(), Hidden: true}
		}
		postCols = append(postCols, col)
		names = append(names, col.Name)
		ag.byString[g.String()] = &expr.ColumnRef{Name: g.String(), Index: i, Typ: bound.Type()}
	}

	aggs := make([]*expr.Aggregate, len(aggASTs))
	for j, a := range aggASTs {
		kind, _ := expr.AggKindByName(a.Name)
		agg := &expr.Aggregate{Kind: kind, Distinct: a.Distinct}
		if a.Star {
			if kind != expr.AggCount {
				return nil, nil, fmt.Errorf("plan: %s(*) is not valid", strings.ToUpper(a.Name))
			}
			agg.Kind = expr.AggCountStar
		} else {
			if len(a.Args) != 1 {
				return nil, nil, fmt.Errorf("plan: %s takes exactly one argument", strings.ToUpper(a.Name))
			}
			in, err := bindExpr(a.Args[0], sc, c.p.Funcs, nil, c.params)
			if err != nil {
				return nil, nil, err
			}
			agg.Input = in
		}
		rt, err := agg.ResultType()
		if err != nil {
			return nil, nil, err
		}
		aggs[j] = agg
		idx := len(core.GroupBy) + j
		name := a.String()
		names = append(names, name)
		postCols = append(postCols, ScopeCol{Name: name, Type: rt, Hidden: true})
		ag.byString[a.String()] = &expr.ColumnRef{Name: name, Index: idx, Typ: rt}
	}

	op = &exec.HashAggregate{
		Input:   exec.ParallelizeMem(op, c.workers, c.p.Budget, c.mem),
		GroupBy: groupExprs, Aggs: aggs, Names: names,
		Workers: c.workers, Budget: c.p.Budget, Mem: c.mem,
	}
	postScope := &Scope{Cols: postCols}

	if core.Having != nil {
		pred, err := bindExpr(core.Having, postScope, c.p.Funcs, ag, c.params)
		if err != nil {
			return nil, nil, err
		}
		if pred.Type() != storage.TypeBool {
			return nil, nil, fmt.Errorf("plan: HAVING must be boolean, got %s", pred.Type())
		}
		op = &exec.Filter{Input: op, Pred: pred}
	}
	return c.planProjection(op, postScope, core, ag)
}
