// Package plan binds SQL ASTs against the catalog and lowers them to
// executor operator trees. The planner implements the optimizations the
// paper's SQL path depends on: predicate pushdown into the FROM list,
// equi-join detection (hash joins for the triangle/overlap self-joins),
// and projection of only the referenced columns.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/storage"
)

// ScopeCol is one visible column during binding.
type ScopeCol struct {
	Qualifier string // table alias or name; "" for derived columns
	Name      string
	Type      storage.Type
	Hidden    bool // not expanded by *, not resolvable (planner internals)
}

// Scope is an ordered list of visible columns; positions correspond to
// the current operator's output columns.
type Scope struct {
	Cols []ScopeCol
}

// NewScope builds a scope for a base table under the given qualifier.
func NewScope(qualifier string, schema storage.Schema) *Scope {
	s := &Scope{Cols: make([]ScopeCol, schema.Len())}
	for i, c := range schema.Cols {
		s.Cols[i] = ScopeCol{Qualifier: qualifier, Name: c.Name, Type: c.Type}
	}
	return s
}

// Concat returns a scope with a's columns followed by b's.
func Concat(a, b *Scope) *Scope {
	out := &Scope{Cols: make([]ScopeCol, 0, len(a.Cols)+len(b.Cols))}
	out.Cols = append(out.Cols, a.Cols...)
	out.Cols = append(out.Cols, b.Cols...)
	return out
}

// Resolve finds the column position for a possibly qualified name. It
// returns an error for unknown and for ambiguous references.
func (s *Scope) Resolve(qualifier, name string) (int, storage.Type, error) {
	found := -1
	for i, c := range s.Cols {
		if c.Hidden {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if found >= 0 {
			full := name
			if qualifier != "" {
				full = qualifier + "." + name
			}
			return 0, 0, fmt.Errorf("plan: ambiguous column %q", full)
		}
		found = i
	}
	if found < 0 {
		full := name
		if qualifier != "" {
			full = qualifier + "." + name
		}
		return 0, 0, fmt.Errorf("plan: unknown column %q", full)
	}
	return found, s.Cols[found].Type, nil
}

// Schema renders the scope as an output schema (unqualified names).
func (s *Scope) Schema() storage.Schema {
	cols := make([]storage.ColumnDef, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = storage.Col(c.Name, c.Type)
	}
	return storage.NewSchema(cols...)
}

// Visible returns the positions of all non-hidden columns, optionally
// restricted to one qualifier (for `t.*`).
func (s *Scope) Visible(qualifier string) []int {
	var out []int
	for i, c := range s.Cols {
		if c.Hidden {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		out = append(out, i)
	}
	return out
}
