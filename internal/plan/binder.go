package plan

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/sql"
	"repro/internal/storage"
)

// typeFromName maps normalized SQL type names to storage types.
func typeFromName(name string) (storage.Type, error) {
	switch strings.ToUpper(name) {
	case "INTEGER":
		return storage.TypeInt64, nil
	case "DOUBLE":
		return storage.TypeFloat64, nil
	case "VARCHAR":
		return storage.TypeString, nil
	case "BOOLEAN":
		return storage.TypeBool, nil
	default:
		return 0, fmt.Errorf("plan: unknown type %q", name)
	}
}

var binOps = map[string]expr.BinOp{
	"+": expr.OpAdd, "-": expr.OpSub, "*": expr.OpMul, "/": expr.OpDiv,
	"%": expr.OpMod, "=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt,
	"<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe, "AND": expr.OpAnd,
	"OR": expr.OpOr, "||": expr.OpConcat,
}

// Params is the binding context for positional parameters ($1..$n).
// Types records each parameter's storage type — taken from the first
// execution's argument values, so a bound parameter behaves exactly
// like the literal the legacy substitution path would have rendered —
// and Slot is the shared cell all Param nodes of the plan read their
// per-execution values from.
type Params struct {
	Slot  *expr.ParamSlot
	Types []storage.Type
}

// NewParams returns a Params for arguments of the given values' types,
// with the values already bound (planning evaluates parameterized CTEs
// and VALUES eagerly, so the first execution's arguments must be
// readable during binding).
func NewParams(args []storage.Value) *Params {
	slot := &expr.ParamSlot{}
	slot.Bind(args)
	types := make([]storage.Type, len(args))
	for i, a := range args {
		types[i] = a.Type
	}
	return &Params{Slot: slot, Types: types}
}

// BindExpr binds a scalar AST expression against the scope. Aggregate
// calls are rejected here; the aggregate path binds through aggScope.
func BindExpr(e sql.Expr, sc *Scope, funcs *expr.Registry) (expr.Expr, error) {
	return bindExpr(e, sc, funcs, nil, nil)
}

// BindExprParams is BindExpr with positional parameters in scope (the
// engine's parameterized DML path).
func BindExprParams(e sql.Expr, sc *Scope, funcs *expr.Registry, ps *Params) (expr.Expr, error) {
	return bindExpr(e, sc, funcs, nil, ps)
}

// aggScope maps the printed form of group-by expressions and aggregate
// calls to output columns of a HashAggregate.
type aggScope struct {
	byString map[string]*expr.ColumnRef
}

func bindExpr(e sql.Expr, sc *Scope, funcs *expr.Registry, ag *aggScope, ps *Params) (expr.Expr, error) {
	// In post-aggregation binding, whole subtrees that match a group-by
	// expression or an aggregate call resolve to agg output columns.
	if ag != nil {
		if ref, ok := ag.byString[e.String()]; ok {
			return ref, nil
		}
	}
	switch n := e.(type) {
	case *sql.Ident:
		i, t, err := sc.Resolve(n.Qualifier, n.Name)
		if err != nil {
			if ag != nil {
				return nil, fmt.Errorf("%w (columns not in GROUP BY must be wrapped in an aggregate)", err)
			}
			return nil, err
		}
		return &expr.ColumnRef{Name: n.String(), Index: i, Typ: t}, nil
	case *sql.IntLit:
		return &expr.Literal{Val: storage.Int64(n.V)}, nil
	case *sql.FloatLit:
		return &expr.Literal{Val: storage.Float64(n.V)}, nil
	case *sql.StringLit:
		return &expr.Literal{Val: storage.Str(n.V)}, nil
	case *sql.BoolLit:
		return &expr.Literal{Val: storage.Bool(n.V)}, nil
	case *sql.NullLit:
		return &expr.Literal{Val: storage.Null(storage.TypeString)}, nil
	case *sql.Param:
		if ps == nil {
			return nil, fmt.Errorf("plan: parameter $%d outside a prepared statement", n.N)
		}
		if n.N < 1 || n.N > len(ps.Types) {
			return nil, fmt.Errorf("plan: parameter $%d out of range (%d arguments bound)", n.N, len(ps.Types))
		}
		return &expr.Param{N: n.N, Typ: ps.Types[n.N-1], Slot: ps.Slot}, nil
	case *sql.BinExpr:
		l, err := bindExpr(n.L, sc, funcs, ag, ps)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(n.R, sc, funcs, ag, ps)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[n.Op]
		if !ok {
			return nil, fmt.Errorf("plan: unknown operator %q", n.Op)
		}
		// NULL literals adopt the other side's type in comparisons.
		if lit, isLit := l.(*expr.Literal); isLit && lit.Val.Null {
			l = &expr.Literal{Val: storage.Null(r.Type())}
		}
		if lit, isLit := r.(*expr.Literal); isLit && lit.Val.Null {
			r = &expr.Literal{Val: storage.Null(l.Type())}
		}
		return expr.NewBinary(op, l, r)
	case *sql.UnExpr:
		in, err := bindExpr(n.E, sc, funcs, ag, ps)
		if err != nil {
			return nil, err
		}
		if n.Op == "NOT" {
			return expr.NewNot(in)
		}
		return expr.NewNeg(in)
	case *sql.IsNullExpr:
		in, err := bindExpr(n.E, sc, funcs, ag, ps)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{Input: in, Negate: n.Not}, nil
	case *sql.InExpr:
		in, err := bindExpr(n.E, sc, funcs, ag, ps)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(n.List))
		for i, le := range n.List {
			b, err := bindExpr(le, sc, funcs, ag, ps)
			if err != nil {
				return nil, err
			}
			list[i] = b
		}
		return &expr.InList{Input: in, List: list, Negate: n.Not}, nil
	case *sql.LikeExpr:
		in, err := bindExpr(n.E, sc, funcs, ag, ps)
		if err != nil {
			return nil, err
		}
		pat, err := bindExpr(n.Pattern, sc, funcs, ag, ps)
		if err != nil {
			return nil, err
		}
		if in.Type() != storage.TypeString || pat.Type() != storage.TypeString {
			return nil, fmt.Errorf("plan: LIKE requires strings")
		}
		return &expr.Like{Input: in, Pattern: pat, Negate: n.Not}, nil
	case *sql.CastExpr:
		in, err := bindExpr(n.E, sc, funcs, ag, ps)
		if err != nil {
			return nil, err
		}
		t, err := typeFromName(n.TypeName)
		if err != nil {
			return nil, err
		}
		return &expr.Cast{Input: in, To: t}, nil
	case *sql.CaseExpr:
		return bindCase(n, sc, funcs, ag, ps)
	case *sql.FuncExpr:
		if _, isAgg := expr.AggKindByName(n.Name); isAgg {
			return nil, fmt.Errorf("plan: aggregate %s not allowed here", strings.ToUpper(n.Name))
		}
		fn, ok := funcs.Lookup(n.Name)
		if !ok {
			return nil, fmt.Errorf("plan: unknown function %q", n.Name)
		}
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			b, err := bindExpr(a, sc, funcs, ag, ps)
			if err != nil {
				return nil, err
			}
			args[i] = b
		}
		return expr.NewCall(fn, args)
	default:
		return nil, fmt.Errorf("plan: cannot bind %T", e)
	}
}

func bindCase(n *sql.CaseExpr, sc *Scope, funcs *expr.Registry, ag *aggScope, ps *Params) (expr.Expr, error) {
	out := &expr.Case{}
	var branches []expr.Expr
	for _, w := range n.Whens {
		cond, err := bindExpr(w.Cond, sc, funcs, ag, ps)
		if err != nil {
			return nil, err
		}
		if cond.Type() != storage.TypeBool {
			return nil, fmt.Errorf("plan: CASE WHEN condition must be boolean, got %s", cond.Type())
		}
		then, err := bindExpr(w.Then, sc, funcs, ag, ps)
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, expr.When{Cond: cond, Then: then})
		branches = append(branches, then)
	}
	if n.Else != nil {
		els, err := bindExpr(n.Else, sc, funcs, ag, ps)
		if err != nil {
			return nil, err
		}
		out.Else = els
		branches = append(branches, els)
	}
	typ, err := commonType(branches)
	if err != nil {
		return nil, fmt.Errorf("plan: CASE branches: %w", err)
	}
	out.Typ = typ
	return out, nil
}

// commonType finds the result type of a set of branches: identical
// types win; mixed numerics promote to DOUBLE; anything else errors.
func commonType(es []expr.Expr) (storage.Type, error) {
	if len(es) == 0 {
		return storage.TypeString, nil
	}
	t := es[0].Type()
	for _, e := range es[1:] {
		et := e.Type()
		if et == t {
			continue
		}
		if et.Numeric() && t.Numeric() {
			t = storage.TypeFloat64
			continue
		}
		return 0, fmt.Errorf("incompatible types %s and %s", t, et)
	}
	return t, nil
}

// collectAggs walks an AST collecting aggregate calls (deduplicated by
// printed form, in first-appearance order).
func collectAggs(e sql.Expr, into *[]*sql.FuncExpr, seen map[string]bool) {
	switch n := e.(type) {
	case *sql.FuncExpr:
		if _, isAgg := expr.AggKindByName(n.Name); isAgg {
			key := n.String()
			if !seen[key] {
				seen[key] = true
				*into = append(*into, n)
			}
			return // aggregates do not nest
		}
		for _, a := range n.Args {
			collectAggs(a, into, seen)
		}
	case *sql.BinExpr:
		collectAggs(n.L, into, seen)
		collectAggs(n.R, into, seen)
	case *sql.UnExpr:
		collectAggs(n.E, into, seen)
	case *sql.IsNullExpr:
		collectAggs(n.E, into, seen)
	case *sql.InExpr:
		collectAggs(n.E, into, seen)
		for _, le := range n.List {
			collectAggs(le, into, seen)
		}
	case *sql.LikeExpr:
		collectAggs(n.E, into, seen)
		collectAggs(n.Pattern, into, seen)
	case *sql.CastExpr:
		collectAggs(n.E, into, seen)
	case *sql.CaseExpr:
		for _, w := range n.Whens {
			collectAggs(w.Cond, into, seen)
			collectAggs(w.Then, into, seen)
		}
		if n.Else != nil {
			collectAggs(n.Else, into, seen)
		}
	}
}
