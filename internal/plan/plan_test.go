package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sql"
	"repro/internal/storage"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	edge, err := cat.Create("edge", storage.NewSchema(
		storage.Col("src", storage.TypeInt64),
		storage.Col("dst", storage.TypeInt64),
		storage.Col("weight", storage.TypeFloat64),
	))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][3]int64{{1, 2, 10}, {2, 3, 20}, {1, 3, 30}} {
		if err := edge.AppendRow(storage.Int64(e[0]), storage.Int64(e[1]), storage.Float64(float64(e[2]))); err != nil {
			t.Fatal(err)
		}
	}
	vertex, err := cat.Create("vertex", storage.NewSchema(
		storage.Col("id", storage.TypeInt64),
		storage.Col("name", storage.TypeString),
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := vertex.AppendRow(storage.Int64(i), storage.Str(strings.Repeat("v", int(i)))); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func planQuery(t *testing.T, cat *catalog.Catalog, q string) exec.Operator {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	p := New(cat, expr.NewRegistry())
	op, err := p.PlanSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// findOp walks the operator tree looking for a type.
func hasHashJoin(op exec.Operator) bool {
	switch o := op.(type) {
	case *exec.HashJoin:
		return true
	case *exec.NestedLoopJoin:
		return hasHashJoin(o.Left) || hasHashJoin(o.Right)
	case *exec.Filter:
		return hasHashJoin(o.Input)
	case *exec.Project:
		return hasHashJoin(o.Input)
	case *exec.Sort:
		return hasHashJoin(o.Input)
	case *exec.Limit:
		return hasHashJoin(o.Input)
	case *exec.HashAggregate:
		return hasHashJoin(o.Input)
	case *exec.Distinct:
		return hasHashJoin(o.Input)
	}
	return false
}

func TestEquiJoinBecomesHashJoin(t *testing.T) {
	cat := testCatalog(t)
	op := planQuery(t, cat, "SELECT v.name FROM edge e JOIN vertex v ON e.dst = v.id")
	if !hasHashJoin(op) {
		t.Error("explicit equi-join should plan as hash join")
	}
	// Comma-join with WHERE equality also promotes to hash join.
	op2 := planQuery(t, cat, "SELECT v.name FROM edge e, vertex v WHERE e.dst = v.id")
	if !hasHashJoin(op2) {
		t.Error("comma join with equality predicate should plan as hash join")
	}
}

func TestScopeAmbiguity(t *testing.T) {
	cat := testCatalog(t)
	st, _ := sql.Parse("SELECT src FROM edge e1, edge e2")
	p := New(cat, expr.NewRegistry())
	if _, err := p.PlanSelect(st.(*sql.SelectStmt)); err == nil {
		t.Error("ambiguous column should fail to bind")
	}
	st2, _ := sql.Parse("SELECT nothere FROM edge")
	if _, err := p.PlanSelect(st2.(*sql.SelectStmt)); err == nil {
		t.Error("unknown column should fail to bind")
	}
}

func TestStarExpansion(t *testing.T) {
	cat := testCatalog(t)
	op := planQuery(t, cat, "SELECT * FROM edge e JOIN vertex v ON e.src = v.id")
	if op.Schema().Len() != 5 {
		t.Errorf("* over join expands to %d cols, want 5", op.Schema().Len())
	}
	op2 := planQuery(t, cat, "SELECT v.* FROM edge e JOIN vertex v ON e.src = v.id")
	if op2.Schema().Len() != 2 {
		t.Errorf("v.* expands to %d cols, want 2", op2.Schema().Len())
	}
}

func TestHavingWithoutGroupByRejected(t *testing.T) {
	cat := testCatalog(t)
	st, _ := sql.Parse("SELECT src FROM edge HAVING src > 1")
	p := New(cat, expr.NewRegistry())
	if _, err := p.PlanSelect(st.(*sql.SelectStmt)); err == nil {
		t.Error("HAVING without aggregates should be rejected")
	}
}

func TestAggregateBindingErrors(t *testing.T) {
	cat := testCatalog(t)
	p := New(cat, expr.NewRegistry())
	// Non-grouped column in select list.
	st, _ := sql.Parse("SELECT dst, COUNT(*) FROM edge GROUP BY src")
	if _, err := p.PlanSelect(st.(*sql.SelectStmt)); err == nil {
		t.Error("non-grouped column must be rejected")
	}
	// Aggregate in WHERE.
	st2, _ := sql.Parse("SELECT src FROM edge WHERE COUNT(*) > 1")
	if _, err := p.PlanSelect(st2.(*sql.SelectStmt)); err == nil {
		t.Error("aggregate in WHERE must be rejected")
	}
	// Star inside aggregate other than COUNT.
	st3, _ := sql.Parse("SELECT SUM(*) FROM edge")
	if _, err := p.PlanSelect(st3.(*sql.SelectStmt)); err == nil {
		t.Error("SUM(*) must be rejected")
	}
}

func TestOrderByUnprojectedColumn(t *testing.T) {
	cat := testCatalog(t)
	// Plain selects may order by any input expression via hidden sort
	// columns; the extra columns must not leak into the output.
	op := planQuery(t, cat, "SELECT src FROM edge ORDER BY weight DESC")
	out, err := exec.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Len() != 1 {
		t.Fatalf("hidden sort column leaked: %v", out.Schema.Names())
	}
	// weights are 10,20,30 on (1,2),(2,3),(1,3): descending → 1,2,1.
	want := []int64{1, 2, 1}
	for i, w := range want {
		if out.Row(i)[0].I != w {
			t.Errorf("row %d = %d, want %d", i, out.Row(i)[0].I, w)
		}
	}
	// DISTINCT cannot use hidden sort columns (they would change the
	// duplicate set) and must still be rejected.
	st, _ := sql.Parse("SELECT DISTINCT src FROM edge ORDER BY dst + 1")
	p := New(cat, expr.NewRegistry())
	if _, err := p.PlanSelect(st.(*sql.SelectStmt)); err == nil {
		t.Error("DISTINCT with unprojected ORDER BY should be rejected")
	}
}

func TestPredicatePushdownProducesFilterUnderJoin(t *testing.T) {
	cat := testCatalog(t)
	// weight > 15 binds on the edge side alone and must be pushed below
	// the join: the join's left input should be a Filter over the scan.
	op := planQuery(t, cat, "SELECT v.name FROM edge e, vertex v WHERE e.dst = v.id AND e.weight > 15.0")
	hj, ok := findHashJoin(op)
	if !ok {
		t.Fatal("expected hash join in plan")
	}
	if _, ok := hj.Left.(*exec.Filter); !ok {
		t.Errorf("expected filter pushed below join, left input is %T", hj.Left)
	}
	// Executing it still gives the right answer.
	out, err := exec.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("rows = %d, want 2 (weights 20 and 30)", out.Len())
	}
}

func findHashJoin(op exec.Operator) (*exec.HashJoin, bool) {
	switch o := op.(type) {
	case *exec.HashJoin:
		return o, true
	case *exec.Filter:
		return findHashJoin(o.Input)
	case *exec.Project:
		return findHashJoin(o.Input)
	case *exec.Sort:
		return findHashJoin(o.Input)
	case *exec.Limit:
		return findHashJoin(o.Input)
	case *exec.HashAggregate:
		return findHashJoin(o.Input)
	}
	return nil, false
}

func TestScopeResolve(t *testing.T) {
	sc := NewScope("e", storage.NewSchema(
		storage.Col("src", storage.TypeInt64),
		storage.Col("dst", storage.TypeInt64),
	))
	if i, typ, err := sc.Resolve("e", "dst"); err != nil || i != 1 || typ != storage.TypeInt64 {
		t.Errorf("qualified resolve: %d %v %v", i, typ, err)
	}
	if i, _, err := sc.Resolve("", "src"); err != nil || i != 0 {
		t.Errorf("unqualified resolve: %d %v", i, err)
	}
	if _, _, err := sc.Resolve("x", "src"); err == nil {
		t.Error("wrong qualifier should fail")
	}
	both := Concat(sc, NewScope("v", storage.NewSchema(storage.Col("src", storage.TypeInt64))))
	if _, _, err := both.Resolve("", "src"); err == nil {
		t.Error("ambiguous unqualified name should fail")
	}
	if i, _, err := both.Resolve("v", "src"); err != nil || i != 2 {
		t.Errorf("qualified disambiguation failed: %d %v", i, err)
	}
}

func TestHiddenColumnsInvisible(t *testing.T) {
	sc := &Scope{Cols: []ScopeCol{
		{Qualifier: "t", Name: "visible", Type: storage.TypeInt64},
		{Qualifier: "$system", Name: "secret", Type: storage.TypeInt64, Hidden: true},
	}}
	if _, _, err := sc.Resolve("", "secret"); err == nil {
		t.Error("hidden column must not resolve")
	}
	if got := sc.Visible(""); len(got) != 1 || got[0] != 0 {
		t.Errorf("Visible = %v", got)
	}
}

// walkOps visits every operator in a plan tree.
func walkOps(op exec.Operator, visit func(exec.Operator)) {
	visit(op)
	switch o := op.(type) {
	case *exec.Filter:
		walkOps(o.Input, visit)
	case *exec.Project:
		walkOps(o.Input, visit)
	case *exec.Limit:
		walkOps(o.Input, visit)
	case *exec.Sort:
		walkOps(o.Input, visit)
	case *exec.Distinct:
		walkOps(o.Input, visit)
	case *exec.HashAggregate:
		walkOps(o.Input, visit)
	case *exec.HashJoin:
		walkOps(o.Left, visit)
		walkOps(o.Right, visit)
	case *exec.NestedLoopJoin:
		walkOps(o.Left, visit)
		walkOps(o.Right, visit)
	case *exec.UnionAll:
		for _, in := range o.Inputs {
			walkOps(in, visit)
		}
	case *exec.Gather:
		for _, f := range o.Fragments {
			walkOps(f, visit)
		}
	}
}

// TestLimitKeepsPlanSerial asserts the planner's early-exit rule: a
// LIMIT (without ORDER BY) plans its whole subtree serial and
// streaming — no Gathers, and streaming joins — while the same query
// without LIMIT (or with ORDER BY, whose sort drains anyway) stays
// parallel.
func TestLimitKeepsPlanSerial(t *testing.T) {
	oldMorsel := exec.MinMorselRows
	exec.MinMorselRows = 4
	defer func() { exec.MinMorselRows = oldMorsel }()

	cat := catalog.New()
	big, err := cat.Create("big", storage.NewSchema(
		storage.Col("id", storage.TypeInt64),
		storage.Col("w", storage.TypeFloat64),
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := big.AppendRow(storage.Int64(i), storage.Float64(float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	plan := func(q string) exec.Operator {
		t.Helper()
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		p := New(cat, expr.NewRegistry())
		p.Parallelism = 8
		op, err := p.PlanSelect(st.(*sql.SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		return op
	}
	countGathers := func(op exec.Operator) int {
		n := 0
		walkOps(op, func(o exec.Operator) {
			if _, ok := o.(*exec.Gather); ok {
				n++
			}
		})
		return n
	}

	if n := countGathers(plan("SELECT id FROM big WHERE w > 10.0")); n == 0 {
		t.Fatal("parallel query without LIMIT should contain a Gather")
	}
	if n := countGathers(plan("SELECT id FROM big WHERE w > 10.0 LIMIT 5")); n != 0 {
		t.Fatalf("plan under LIMIT contains %d Gathers, want 0 (serial streaming)", n)
	}
	if n := countGathers(plan("SELECT id FROM big WHERE w > 10.0 ORDER BY id LIMIT 5")); n == 0 {
		t.Fatal("ORDER BY LIMIT must stay parallel (the sort drains its input anyway)")
	}

	// Joins under a LIMIT stream their probe side.
	op := plan("SELECT a.id FROM big a JOIN big b ON a.id = b.id LIMIT 5")
	streaming := 0
	walkOps(op, func(o exec.Operator) {
		if j, ok := o.(*exec.HashJoin); ok && j.Streaming {
			streaming++
		}
	})
	if streaming == 0 {
		t.Fatal("hash join under LIMIT should be planned streaming")
	}

	// Blocking aggregates cannot short-circuit: LIMIT over GROUP BY
	// keeps the parallel plan (a Gather over the aggregate's spooled
	// output and/or its input).
	if n := countGathers(plan("SELECT id, COUNT(*) FROM big GROUP BY id LIMIT 5")); n == 0 {
		t.Fatal("aggregate under LIMIT planned fully serial; blocking fold should keep parallelism")
	}
	// Same through a derived table: the aggregating subquery gets the
	// full budget back even inside a serialized outer LIMIT.
	if n := countGathers(plan("SELECT t.id FROM (SELECT id, COUNT(*) AS c FROM big GROUP BY id) AS t LIMIT 5")); n == 0 {
		t.Fatal("aggregating subquery under LIMIT planned fully serial; blocking fold should keep parallelism")
	}
	// And for a sorting subquery: its blocking Sort drains its input
	// no matter what, so it keeps the full budget too.
	if n := countGathers(plan("SELECT t.id FROM (SELECT id FROM big ORDER BY w) AS t LIMIT 5")); n == 0 {
		t.Fatal("sorting subquery under LIMIT planned fully serial; blocking sort should keep parallelism")
	}

	// A LIMIT too large to benefit from early exit keeps the parallel
	// plan.
	oldMax := SerialLimitMax
	SerialLimitMax = 100
	defer func() { SerialLimitMax = oldMax }()
	if n := countGathers(plan("SELECT id FROM big WHERE w > 10.0 LIMIT 101")); n == 0 {
		t.Fatal("LIMIT above SerialLimitMax should keep the parallel plan")
	}
	if n := countGathers(plan("SELECT id FROM big WHERE w > 10.0 LIMIT 100")); n != 0 {
		t.Fatal("LIMIT at SerialLimitMax should plan serial")
	}
}
