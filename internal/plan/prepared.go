package plan

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sql"
	"repro/internal/storage"
)

// Route is a bind-time shard routing decision: Scan's target shard is
// computed from argument N's value at every execution (the plan-time
// equivalent — a literal point predicate on the partition key — sets
// TableScan.Shard once, at planning).
type Route struct {
	Scan *exec.TableScan
	N    int          // 1-based parameter index holding the key value
	Key  storage.Type // partition-key column type (coercion target)
}

// Prepared is a parameterized SELECT plan ready for repeated
// bind-and-run execution. One execution at a time may use it: Bind
// mutates the shared ParamSlot, the scan targets and the context ref.
type Prepared struct {
	Root   exec.Operator
	Slot   *expr.ParamSlot
	Types  []storage.Type
	Routes []Route
	CtxRef *exec.CtxRef
	// Workers is the parallelism the plan was built for; a session
	// whose effective worker count differs must not reuse it.
	Workers int
	// Cacheable reports whether Root survives re-execution (every
	// operator re-opens cleanly and holds no plan-time data). A
	// non-cacheable plan is still good for exactly one run.
	Cacheable bool
}

// PrepareSelect plans st once for repeated execution. ps carries the
// parameter types (from the first execution's arguments) and must
// already have those arguments bound — parameterized CTEs are drained
// at plan time and read them. src resolves the tables of this first
// execution; later executions repoint the scans via Bind.
func (p *Planner) PrepareSelect(st *sql.SelectStmt, workers int, src TableSource, ps *Params) (*Prepared, error) {
	return p.PrepareSelectMem(st, workers, -1, src, ps)
}

// PrepareSelectMem is PrepareSelect with a per-statement work_mem
// override (see PlanSelectMem). The statement's memory grant is built
// into the plan, so a cached plan must only be reused by executions
// with the same work_mem — the plan cache keys on it.
func (p *Planner) PrepareSelectMem(st *sql.SelectStmt, workers int, workMem int64, src TableSource, ps *Params) (*Prepared, error) {
	if workers <= 0 {
		workers = p.Parallelism
	}
	c := &planCtx{p: p, workers: workers, fullWorkers: workers, mem: p.statementMem(workMem), ctes: make(map[string]*storage.Batch), src: src, params: ps}
	root, err := c.planSelect(st)
	if err != nil {
		return nil, err
	}
	cacheable := exec.Cacheable(root)
	ref := exec.NewCtxRef()
	root = exec.WithContextRef(ref, root)
	return &Prepared{
		Root: root, Slot: ps.Slot, Types: ps.Types, Routes: c.routes,
		CtxRef: ref, Workers: workers, Cacheable: cacheable,
	}, nil
}

// Bind readies the plan for one execution: it installs the execution's
// context, binds the argument values, repoints every scan through
// lookup (nil keeps the current tables — the first execution), and
// routes parameter-keyed point scans to their owning shards. The
// caller must guarantee exclusive use of the plan until the run ends
// and that args match the prepared type signature.
func (pp *Prepared) Bind(ctx context.Context, args []storage.Value, lookup func(string) (storage.TableData, error)) error {
	if len(args) < len(pp.Types) {
		return fmt.Errorf("plan: prepared statement wants %d arguments, got %d", len(pp.Types), len(args))
	}
	pp.CtxRef.Set(ctx)
	pp.Slot.Bind(args)
	if lookup != nil {
		if err := exec.Rebind(pp.Root, lookup); err != nil {
			return err
		}
	}
	bindRoutes(pp.Routes, args)
	return nil
}

// bindRoutes routes each parameter-keyed point scan to the shard its
// bound key value hashes to.
func bindRoutes(routes []Route, args []storage.Value) {
	for _, r := range routes {
		sh, ok := r.Scan.Table.(storage.Sharded)
		if !ok || sh.NumShards() < 2 || r.N > len(args) {
			r.Scan.Shard = 1
			continue
		}
		v := args[r.N-1]
		if v.Null {
			// `key = NULL` matches nothing; any single shard yields the
			// same (empty) filtered result without a full scan.
			r.Scan.Shard = 1
			continue
		}
		cv, err := storage.Coerce(v, r.Key)
		if err != nil {
			// The prepared type signature ruled out cross-type keys, so
			// this cannot happen; route to shard 1 and let the filter
			// surface whatever the comparison does.
			r.Scan.Shard = 1
			continue
		}
		r.Scan.Shard = int(storage.HashValue(cv)%uint64(sh.NumShards())) + 1
	}
}
