// Package pipeline implements the dataflow composition from the demo's
// GUI (Figure 3): users chain relational operators (selection,
// projection, aggregation) with graph algorithms (vertex-centric and
// SQL) into end-to-end analyses — the paper's §3.4 "richer graph
// analytics" story, where graph analytics is pre-/post-processing plus
// algorithms, not just a bare algorithm run.
package pipeline

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
)

// Context carries state through the stages of one pipeline run.
type Context struct {
	DB    *engine.DB
	Graph *core.Graph
	// Values holds named stage outputs (maps, counts, rows).
	Values map[string]interface{}
	// Trace records one line per completed stage.
	Trace []string
}

// Stage is one node of the dataflow.
type Stage interface {
	// Name identifies the stage in traces and errors.
	Name() string
	// Run executes the stage, reading and writing pc.
	Run(ctx context.Context, pc *Context) error
}

// Pipeline is an ordered chain of stages.
type Pipeline struct {
	stages []Stage
}

// New builds a pipeline from stages.
func New(stages ...Stage) *Pipeline { return &Pipeline{stages: stages} }

// Append adds more stages.
func (p *Pipeline) Append(stages ...Stage) *Pipeline {
	p.stages = append(p.stages, stages...)
	return p
}

// Run executes the stages in order over the graph.
func (p *Pipeline) Run(ctx context.Context, db *engine.DB, g *core.Graph) (*Context, error) {
	pc := &Context{DB: db, Graph: g, Values: make(map[string]interface{})}
	for _, s := range p.stages {
		if err := ctx.Err(); err != nil {
			return pc, err
		}
		if err := s.Run(ctx, pc); err != nil {
			return pc, fmt.Errorf("pipeline: stage %s: %w", s.Name(), err)
		}
		pc.Trace = append(pc.Trace, s.Name())
	}
	return pc, nil
}

// Subgraph selects a subgraph (the GUI's "scope of analysis"): edges
// matching EdgeWhere (a SQL predicate over the edge table's columns)
// are copied into a new graph named Target, vertices are those incident
// to the kept edges. An empty EdgeWhere keeps everything.
type Subgraph struct {
	Target    string
	EdgeWhere string // e.g. "etype = 'family' AND weight > 2.0"
}

// Name implements Stage.
func (s *Subgraph) Name() string { return "subgraph:" + s.Target }

// Run implements Stage: after it, pc.Graph is the new subgraph.
func (s *Subgraph) Run(_ context.Context, pc *Context) error {
	g := pc.Graph
	db := pc.DB
	if db.Catalog().Has(s.Target + "_vertex") {
		if err := core.DropGraph(db, s.Target); err != nil {
			return err
		}
	}
	sub, err := core.CreateGraph(db, s.Target)
	if err != nil {
		return err
	}
	where := ""
	if s.EdgeWhere != "" {
		where = " WHERE " + s.EdgeWhere
	}
	if _, err := db.Exec(fmt.Sprintf(
		"INSERT INTO %s SELECT src, dst, weight, etype, created FROM %s%s",
		sub.EdgeTable(), g.EdgeTable(), where)); err != nil {
		return err
	}
	// Vertices incident to kept edges keep their current values.
	if _, err := db.Exec(fmt.Sprintf(
		`INSERT INTO %[1]s SELECT v.id, v.value, FALSE FROM %[2]s AS v
		 JOIN (SELECT src AS id FROM %[3]s UNION ALL SELECT dst FROM %[3]s) AS touched
		 ON v.id = touched.id GROUP BY v.id, v.value`,
		sub.VertexTable(), g.VertexTable(), sub.EdgeTable())); err != nil {
		return err
	}
	pc.Graph = sub
	return nil
}

// VertexProgramStage runs a vertex-centric program on the current graph
// and stores the graph's float values under Key.
type VertexProgramStage struct {
	Label   string
	Program core.VertexProgram
	Opts    core.Options
	Init    func(id int64) string // initial vertex values; nil keeps current
	Key     string
}

// Name implements Stage.
func (s *VertexProgramStage) Name() string { return "vertex:" + s.Label }

// Run implements Stage.
func (s *VertexProgramStage) Run(ctx context.Context, pc *Context) error {
	if s.Init != nil {
		if err := pc.Graph.ResetForRun(s.Init); err != nil {
			return err
		}
	}
	stats, err := core.Run(ctx, pc.Graph, s.Program, s.Opts)
	if err != nil {
		return err
	}
	pc.Values[s.Key+".stats"] = stats
	vals, err := pc.Graph.FloatValues()
	if err != nil {
		return err
	}
	pc.Values[s.Key] = vals
	return nil
}

// SQLStage runs a SQL statement; SELECT results land in Values[Key].
// Occurrences of {graph} in the query expand to the current graph name
// so stages compose with Subgraph.
type SQLStage struct {
	Label string
	Query string
	Key   string
}

// Name implements Stage.
func (s *SQLStage) Name() string { return "sql:" + s.Label }

// Run implements Stage.
func (s *SQLStage) Run(_ context.Context, pc *Context) error {
	q := expandGraph(s.Query, pc.Graph.Name)
	rows, err := pc.DB.Query(q)
	if err != nil {
		// Not a SELECT? Execute as DML.
		if _, err2 := pc.DB.Exec(q); err2 != nil {
			return err
		}
		return nil
	}
	if s.Key != "" {
		pc.Values[s.Key] = rows
	}
	return nil
}

func expandGraph(q, name string) string {
	out := ""
	for i := 0; i < len(q); {
		if i+7 <= len(q) && q[i:i+7] == "{graph}" {
			out += name
			i += 7
			continue
		}
		out += string(q[i])
		i++
	}
	return out
}

// Histogram buckets a float map from a previous stage into equal-width
// bins — the demo's "distribution of PageRank values" post-processing.
type Histogram struct {
	InputKey string
	Buckets  int
	Key      string
}

// Name implements Stage.
func (h *Histogram) Name() string { return "histogram:" + h.InputKey }

// Bucket is one histogram bin.
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Run implements Stage.
func (h *Histogram) Run(_ context.Context, pc *Context) error {
	raw, ok := pc.Values[h.InputKey]
	if !ok {
		return fmt.Errorf("no value %q in pipeline context", h.InputKey)
	}
	vals, ok := raw.(map[int64]float64)
	if !ok {
		return fmt.Errorf("value %q is %T, want map[int64]float64", h.InputKey, raw)
	}
	if h.Buckets <= 0 {
		h.Buckets = 10
	}
	if len(vals) == 0 {
		pc.Values[h.Key] = []Bucket{}
		return nil
	}
	lo, hi := 0.0, 0.0
	first := true
	for _, v := range vals {
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	width := (hi - lo) / float64(h.Buckets)
	if width == 0 {
		width = 1
	}
	buckets := make([]Bucket, h.Buckets)
	for i := range buckets {
		buckets[i] = Bucket{Lo: lo + float64(i)*width, Hi: lo + float64(i+1)*width}
	}
	for _, v := range vals {
		i := int((v - lo) / width)
		if i >= h.Buckets {
			i = h.Buckets - 1
		}
		buckets[i].Count++
	}
	pc.Values[h.Key] = buckets
	return nil
}

// TopK extracts the k largest entries of a float map into Values[Key]
// as a sorted slice of (ID, Score).
type TopK struct {
	InputKey string
	K        int
	Key      string
}

// Scored is one (vertex, score) result row.
type Scored struct {
	ID    int64
	Score float64
}

// Name implements Stage.
func (t *TopK) Name() string { return fmt.Sprintf("top%d:%s", t.K, t.InputKey) }

// Run implements Stage.
func (t *TopK) Run(_ context.Context, pc *Context) error {
	raw, ok := pc.Values[t.InputKey]
	if !ok {
		return fmt.Errorf("no value %q in pipeline context", t.InputKey)
	}
	vals, ok := raw.(map[int64]float64)
	if !ok {
		return fmt.Errorf("value %q is %T, want map[int64]float64", t.InputKey, raw)
	}
	out := make([]Scored, 0, len(vals))
	for id, v := range vals {
		out = append(out, Scored{ID: id, Score: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if t.K > 0 && len(out) > t.K {
		out = out[:t.K]
	}
	pc.Values[t.Key] = out
	return nil
}
