package pipeline

import (
	"context"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/engine"
)

func loadedGraph(t *testing.T) (*engine.DB, *core.Graph) {
	t.Helper()
	db := engine.New()
	g, err := core.CreateGraph(db, "g")
	if err != nil {
		t.Fatal(err)
	}
	edges := []core.Edge{
		{Src: 1, Dst: 2, Weight: 1, Type: "family", Created: 100},
		{Src: 2, Dst: 1, Weight: 1, Type: "family", Created: 100},
		{Src: 2, Dst: 3, Weight: 5, Type: "friend", Created: 200},
		{Src: 3, Dst: 2, Weight: 5, Type: "friend", Created: 200},
		{Src: 3, Dst: 1, Weight: 2, Type: "family", Created: 300},
		{Src: 1, Dst: 3, Weight: 2, Type: "family", Created: 300},
	}
	if err := g.BulkLoad(nil, edges); err != nil {
		t.Fatal(err)
	}
	return db, g
}

func TestSubgraphStage(t *testing.T) {
	db, g := loadedGraph(t)
	p := New(&Subgraph{Target: "fam", EdgeWhere: "etype = 'family'"})
	pc, err := p.Run(context.Background(), db, g)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Graph.Name != "fam" {
		t.Fatalf("pipeline graph = %s", pc.Graph.Name)
	}
	ne, _ := pc.Graph.NumEdges()
	if ne != 4 {
		t.Errorf("family edges = %d, want 4", ne)
	}
	nv, _ := pc.Graph.NumVertices()
	if nv != 3 {
		t.Errorf("vertices = %d, want 3 (all touch family edges)", nv)
	}
}

func TestFullDataflowSelectionAlgoAggregate(t *testing.T) {
	// The Figure 3 dataflow: Selection → PageRank → TopK → Histogram.
	db, g := loadedGraph(t)
	p := New(
		&Subgraph{Target: "scope", EdgeWhere: "weight < 10.0"},
		&VertexProgramStage{
			Label:   "pagerank",
			Program: algorithms.NewPageRank(5),
			Init:    func(int64) string { return "" },
			Key:     "ranks",
		},
		&TopK{InputKey: "ranks", K: 2, Key: "top"},
		&Histogram{InputKey: "ranks", Buckets: 4, Key: "hist"},
	)
	pc, err := p.Run(context.Background(), db, g)
	if err != nil {
		t.Fatal(err)
	}
	top := pc.Values["top"].([]Scored)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	hist := pc.Values["hist"].([]Bucket)
	total := 0
	for _, b := range hist {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("histogram covers %d vertices, want 3", total)
	}
	if len(pc.Trace) != 4 {
		t.Errorf("trace = %v", pc.Trace)
	}
}

func TestSQLStageWithGraphExpansion(t *testing.T) {
	db, g := loadedGraph(t)
	p := New(&SQLStage{
		Label: "degree",
		Query: "SELECT src, COUNT(*) FROM {graph}_edge GROUP BY src ORDER BY src",
		Key:   "deg",
	})
	pc, err := p.Run(context.Background(), db, g)
	if err != nil {
		t.Fatal(err)
	}
	rows := pc.Values["deg"].(*engine.Rows)
	if rows.Len() != 3 {
		t.Errorf("degree rows = %d", rows.Len())
	}
}

func TestStageErrorsCarryStageName(t *testing.T) {
	db, g := loadedGraph(t)
	p := New(&SQLStage{Label: "broken", Query: "SELECT FROM nothing"})
	if _, err := p.Run(context.Background(), db, g); err == nil {
		t.Fatal("broken SQL should fail")
	}
	p2 := New(&Histogram{InputKey: "missing", Key: "h"})
	if _, err := p2.Run(context.Background(), db, g); err == nil {
		t.Fatal("missing input should fail")
	}
}

func TestTopKOrdering(t *testing.T) {
	pc := &Context{Values: map[string]interface{}{
		"v": map[int64]float64{1: 0.5, 2: 0.9, 3: 0.1, 4: 0.9},
	}}
	tk := &TopK{InputKey: "v", K: 3, Key: "out"}
	if err := tk.Run(context.Background(), pc); err != nil {
		t.Fatal(err)
	}
	out := pc.Values["out"].([]Scored)
	if out[0].ID != 2 || out[1].ID != 4 || out[2].ID != 1 {
		t.Errorf("order wrong: %v (ties break by id)", out)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	pc := &Context{Values: map[string]interface{}{
		"same": map[int64]float64{1: 2.0, 2: 2.0},
	}}
	h := &Histogram{InputKey: "same", Buckets: 3, Key: "out"}
	if err := h.Run(context.Background(), pc); err != nil {
		t.Fatal(err)
	}
	out := pc.Values["out"].([]Bucket)
	total := 0
	for _, b := range out {
		total += b.Count
	}
	if total != 2 {
		t.Errorf("constant-value histogram lost rows: %v", out)
	}
}
