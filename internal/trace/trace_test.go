package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSamplingOffYieldsNilCollector(t *testing.T) {
	tr := New()
	tr.SetSampling(0)
	c := tr.Start(1, "SELECT 1")
	if c != nil {
		t.Fatalf("sampling 0 must not allocate a collector, got %+v", c)
	}
	// Every collector method must be nil-safe.
	c.Add("parse", time.Now(), time.Millisecond, "")
	c.Begin("plan")("x")
	c.AddSpan(Span{Stage: "x"})
	if c.ID() != 0 || c.TotalNs() != 0 || c.Spans() != nil || c.Finished() || c.Slow() {
		t.Fatal("nil collector accessors must return zero values")
	}
	tr.Finish(c, time.Second) // must not panic or publish
	if got := tr.RingLen(); got != 0 {
		t.Fatalf("ring length = %d, want 0", got)
	}
}

func TestSpansRecordAndFinishPublishes(t *testing.T) {
	tr := New()
	c := tr.StartAt(7, "SELECT * FROM t", time.Now().Add(-time.Millisecond))
	if c == nil {
		t.Fatal("sampling 1 must trace")
	}
	if got := tr.ActiveLen(); got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}
	c.Add("admission", c.StartTime(), time.Millisecond, "")
	done := c.Begin("parse")
	done("ok")
	c.AddSpan(Span{Stage: "op:Scan", Depth: 1, DurNs: 42})
	tr.Finish(c, 3*time.Millisecond)
	if !c.Finished() || c.TotalNs() != int64(3*time.Millisecond) {
		t.Fatalf("finish did not stamp total: %v %d", c.Finished(), c.TotalNs())
	}
	if got := tr.ActiveLen(); got != 0 {
		t.Fatalf("active after finish = %d, want 0", got)
	}
	recent := tr.Recent()
	if len(recent) != 1 || recent[0].ID() != c.ID() {
		t.Fatalf("ring should hold the finished trace, got %d entries", len(recent))
	}
	spans := c.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Stage != "admission" || spans[1].Stage != "parse" || spans[1].Detail != "ok" {
		t.Fatalf("unexpected spans: %+v", spans)
	}
	if spans[2].Depth != 1 {
		t.Fatalf("per-op span depth = %d, want 1", spans[2].Depth)
	}
	// Double finish must not publish twice.
	tr.Finish(c, time.Hour)
	if got := tr.RingLen(); got != 1 {
		t.Fatalf("double finish duplicated the ring entry: %d", got)
	}
	if c.TotalNs() != int64(3*time.Millisecond) {
		t.Fatal("double finish overwrote the total")
	}
}

func TestSamplingStrideRetainsOneInN(t *testing.T) {
	tr := New()
	tr.SetSampling(4)
	for i := 0; i < 16; i++ {
		c := tr.Start(1, "q")
		tr.Finish(c, time.Microsecond)
	}
	if got := tr.RingLen(); got != 4 {
		t.Fatalf("stride 4 over 16 statements retained %d, want 4", got)
	}
}

func TestSlowCouplingOverridesStride(t *testing.T) {
	tr := New()
	tr.SetSampling(1000) // effectively never sampled in this test
	tr.SetSlowThreshold(10 * time.Millisecond)
	fast := tr.Start(1, "fast")
	tr.Finish(fast, time.Millisecond)
	slow := tr.Start(1, "slow")
	tr.Finish(slow, 50*time.Millisecond)
	recent := tr.Recent()
	if len(recent) != 1 || recent[0].Text() != "slow" || !recent[0].Slow() {
		t.Fatalf("slow coupling should retain exactly the slow trace, got %d", len(recent))
	}
}

func TestRingWrapsNewestFirst(t *testing.T) {
	tr := New()
	n := DefaultRingSize + 10
	for i := 0; i < n; i++ {
		c := tr.Start(1, fmt.Sprintf("q%d", i))
		tr.Finish(c, time.Duration(i))
	}
	recent := tr.Recent()
	if len(recent) != DefaultRingSize {
		t.Fatalf("ring holds %d, want %d", len(recent), DefaultRingSize)
	}
	if recent[0].Text() != fmt.Sprintf("q%d", n-1) {
		t.Fatalf("newest first violated: got %q", recent[0].Text())
	}
	if last := recent[len(recent)-1].Text(); last != fmt.Sprintf("q%d", n-DefaultRingSize) {
		t.Fatalf("oldest retained = %q", last)
	}
}

func TestSpanOverflowCountsDrops(t *testing.T) {
	tr := New()
	c := tr.Start(1, "q")
	for i := 0; i < MaxSpans+7; i++ {
		c.AddSpan(Span{Stage: "s"})
	}
	if got := len(c.Spans()); got != MaxSpans {
		t.Fatalf("spans = %d, want cap %d", got, MaxSpans)
	}
	if got := c.DroppedSpans(); got != 7 {
		t.Fatalf("dropped = %d, want 7", got)
	}
}

func TestContextCarrier(t *testing.T) {
	tr := New()
	c := tr.Start(1, "q")
	ctx := WithCollector(context.Background(), c)
	if got := FromContext(ctx); got != c {
		t.Fatal("FromContext lost the collector")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("empty context must yield nil")
	}
	if got := WithCollector(context.Background(), nil); got.Value(ctxKey{}) != nil {
		t.Fatal("nil collector must not be attached")
	}
}

// TestConcurrentAppendAndReaders hammers one collector from many
// goroutines while readers snapshot it — the lock-free append path and
// the ring/active views must be race-free (run under -race).
func TestConcurrentAppendAndReaders(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := tr.Start(uint64(g), "q")
				c.Add("parse", time.Now(), time.Microsecond, "")
				c.AddSpan(Span{Stage: "op:Scan", Depth: 1})
				tr.Finish(c, time.Microsecond)
			}
		}(g)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, c := range tr.Recent() {
					_ = c.Spans()
					_ = c.TotalNs()
				}
				for _, c := range tr.Active() {
					_ = c.ElapsedNs()
				}
			}
		}()
	}
	wg.Wait()
	if got := tr.RingLen(); got > DefaultRingSize {
		t.Fatalf("ring overflowed: %d", got)
	}
}
