// Package trace records per-statement lifecycle traces: one span per
// stage a statement passes through (admission wait, parse, plan-cache
// probe, planning, bind, memory grant, WAL append, stream drain) plus
// per-operator and spill detail derived from exec's operator counters.
//
// The design follows the engine's observability discipline: when
// tracing is off (sampling 0) a statement touches one atomic load and
// nothing else; when tracing is on, span appends are lock-free (a
// fixed span array filled through an atomic cursor), and only trace
// completion takes a short mutex to publish into the process-wide ring
// of recent traces. Retention couples to the slow-query threshold:
// a statement slower than the threshold is always kept, regardless of
// the sampling stride.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// MaxSpans bounds one trace's span buffer. Lifecycle stages use ~10
// spans; the rest hold per-operator and spill detail. Appends past the
// cap are counted, not stored.
const MaxSpans = 96

// DefaultRingSize is how many completed traces the process retains.
const DefaultRingSize = 256

// Span is one timed stage of a statement's life. StartNs is the offset
// from the trace's start; Depth 0 spans are the disjoint lifecycle
// stages (their durations sum to ≈ the statement duration), Depth 1
// spans are per-operator/spill detail nested inside the drain stage
// (operator times include child pulls, so they must not be summed).
type Span struct {
	Stage   string
	Detail  string
	StartNs int64
	DurNs   int64
	Depth   int32
}

// Collector accumulates one statement's spans. All methods are nil-safe
// so untraced statements pay nothing beyond the nil check.
type Collector struct {
	id      uint64
	session uint64
	text    string
	start   time.Time
	keep    bool // sampled for ring retention (slow statements override)

	n       atomic.Int32
	dropped atomic.Int32
	spans   [MaxSpans]Span

	totalNs atomic.Int64
	slow    atomic.Bool
	done    atomic.Bool
}

// ID returns the process-unique trace id (0 for a nil collector).
func (c *Collector) ID() uint64 {
	if c == nil {
		return 0
	}
	return c.id
}

// Session returns the owning session id.
func (c *Collector) Session() uint64 {
	if c == nil {
		return 0
	}
	return c.session
}

// Text returns the statement text.
func (c *Collector) Text() string {
	if c == nil {
		return ""
	}
	return c.text
}

// StartTime returns when the statement entered the engine (shifted
// earlier by the admission wait, when one was recorded).
func (c *Collector) StartTime() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.start
}

// TotalNs is the finished trace's wall-clock span (0 while active).
func (c *Collector) TotalNs() int64 {
	if c == nil {
		return 0
	}
	return c.totalNs.Load()
}

// Finished reports whether the trace has completed.
func (c *Collector) Finished() bool { return c != nil && c.done.Load() }

// Slow reports whether the statement crossed the slow threshold.
func (c *Collector) Slow() bool { return c != nil && c.slow.Load() }

// DroppedSpans counts appends lost to the MaxSpans cap.
func (c *Collector) DroppedSpans() int64 {
	if c == nil {
		return 0
	}
	return int64(c.dropped.Load())
}

// ElapsedNs is the time since the trace started (live view for active
// statements; finished traces report their final total).
func (c *Collector) ElapsedNs() int64 {
	if c == nil {
		return 0
	}
	if t := c.totalNs.Load(); t > 0 {
		return t
	}
	return int64(time.Since(c.start))
}

// AddSpan appends a fully specified span (lock-free).
func (c *Collector) AddSpan(s Span) {
	if c == nil {
		return
	}
	i := c.n.Add(1) - 1
	if int(i) >= MaxSpans {
		c.n.Add(-1)
		c.dropped.Add(1)
		return
	}
	c.spans[i] = s
}

// Add records a depth-0 lifecycle span from an absolute start time.
func (c *Collector) Add(stage string, start time.Time, dur time.Duration, detail string) {
	if c == nil {
		return
	}
	c.AddSpan(Span{Stage: stage, Detail: detail, StartNs: int64(start.Sub(c.start)), DurNs: int64(dur)})
}

// Begin opens a lifecycle span now and returns its closer; the span is
// recorded when the closer runs. Safe on a nil collector (the closer
// no-ops).
func (c *Collector) Begin(stage string) func(detail string) {
	if c == nil {
		return func(string) {}
	}
	start := time.Now()
	return func(detail string) {
		c.Add(stage, start, time.Since(start), detail)
	}
}

// Spans returns a copy of the recorded spans in append order.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	n := int(c.n.Load())
	if n > MaxSpans {
		n = MaxSpans
	}
	out := make([]Span, n)
	copy(out, c.spans[:n])
	return out
}

// Tracer owns the process's trace state: the sampling knob, the ring
// of completed traces, and the set of currently active statements.
type Tracer struct {
	sample atomic.Int64 // 0 = off; N>0 = retain 1-in-N (spans always recorded)
	slowNs atomic.Int64 // retention coupling; <=0 disables the override
	seq    atomic.Uint64
	tick   atomic.Uint64

	mu   sync.Mutex
	ring []*Collector
	pos  int

	activeMu sync.Mutex
	active   map[uint64]*Collector

	// Metrics, installed by the engine (nil-safe, walWriter-style).
	Started  *obs.Counter
	Retained *obs.Counter
	Dropped  *obs.Counter // spans lost to the per-trace cap
}

// New returns a tracer that traces every statement (sampling 1) with
// the default ring size.
func New() *Tracer {
	t := &Tracer{
		ring:   make([]*Collector, 0, DefaultRingSize),
		active: make(map[uint64]*Collector),
	}
	t.sample.Store(1)
	return t
}

// SetSampling sets the retention stride: 0 disables tracing entirely
// (statements get no collector), 1 retains every trace, N retains one
// in N (slow statements are always retained). Negative is clamped to 0.
func (t *Tracer) SetSampling(n int64) {
	if n < 0 {
		n = 0
	}
	t.sample.Store(n)
}

// Sampling returns the current stride.
func (t *Tracer) Sampling() int64 { return t.sample.Load() }

// SetSlowThreshold couples retention to the slow-query threshold:
// finished traces at least this slow are retained even when the
// sampling stride would skip them. 0 disables the coupling.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNs.Store(int64(d)) }

// Start opens a trace for one statement, or returns nil when tracing
// is off. The statement's spans are recorded either way once a
// collector exists; the sampling stride only decides ring retention.
func (t *Tracer) Start(session uint64, text string) *Collector {
	return t.StartAt(session, text, time.Now())
}

// StartAt is Start with an explicit start time (sessions shift it
// earlier by the admission-queue wait so the wait is inside the trace).
func (t *Tracer) StartAt(session uint64, text string, start time.Time) *Collector {
	stride := t.sample.Load()
	if stride <= 0 {
		return nil
	}
	c := &Collector{
		id:      t.seq.Add(1),
		session: session,
		text:    text,
		start:   start,
		keep:    t.tick.Add(1)%uint64(stride) == 0,
	}
	if t.Started != nil {
		t.Started.Inc()
	}
	t.activeMu.Lock()
	t.active[c.id] = c
	t.activeMu.Unlock()
	return c
}

// Finish completes a trace: stamps the total, applies the slow
// coupling, removes it from the active set, and publishes it into the
// ring when retained. Safe to call with a nil collector; calling twice
// publishes once.
func (t *Tracer) Finish(c *Collector, total time.Duration) {
	if c == nil || !c.done.CompareAndSwap(false, true) {
		return
	}
	c.totalNs.Store(int64(total))
	if slow := t.slowNs.Load(); slow > 0 && int64(total) >= slow {
		c.slow.Store(true)
	}
	t.activeMu.Lock()
	delete(t.active, c.id)
	t.activeMu.Unlock()
	if d := c.dropped.Load(); d > 0 && t.Dropped != nil {
		t.Dropped.Add(uint64(d))
	}
	if !c.keep && !c.slow.Load() {
		return
	}
	if t.Retained != nil {
		t.Retained.Inc()
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, c)
	} else {
		t.ring[t.pos] = c
		t.pos = (t.pos + 1) % cap(t.ring)
	}
	t.mu.Unlock()
}

// Recent returns the retained traces, newest first.
func (t *Tracer) Recent() []*Collector {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Collector, 0, len(t.ring))
	// ring[pos-1] is newest once the ring has wrapped; before wrapping,
	// the newest is the last appended element.
	for i := len(t.ring) - 1; i >= 0; i-- {
		out = append(out, t.ring[(t.pos+i)%len(t.ring)])
	}
	return out
}

// Active returns the currently executing traced statements.
func (t *Tracer) Active() []*Collector {
	t.activeMu.Lock()
	defer t.activeMu.Unlock()
	out := make([]*Collector, 0, len(t.active))
	for _, c := range t.active {
		out = append(out, c)
	}
	return out
}

// RingLen reports how many completed traces are retained right now.
func (t *Tracer) RingLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// ActiveLen reports how many traced statements are executing.
func (t *Tracer) ActiveLen() int {
	t.activeMu.Lock()
	defer t.activeMu.Unlock()
	return len(t.active)
}

// --- context plumbing ---

// ctxKey keys the collector in a context.
type ctxKey struct{}

// WithCollector attaches a collector to ctx so deep engine layers (WAL
// append, group-commit wait) can stamp spans without signature churn.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the attached collector, or nil.
func FromContext(ctx context.Context) *Collector {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}
