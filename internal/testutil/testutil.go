// Package testutil is the differential-testing harness: seeded random
// graph generation, independent in-memory reference implementations of
// PageRank / shortest paths / connected components, and map-comparison
// helpers. Tests use it to assert that the vertex-centric runtime, the
// hand-tuned SQL path and the reference all agree on the same graph —
// at every engine parallelism level, including the serial baseline.
//
// The references deliberately share no code with either engine path:
// they are straight adjacency-list loops over the generated edge list,
// following the same conventions the engines use (PageRank: damping
// 0.85, no dangling redistribution; SSSP: non-positive weights count
// as 1; components: minimum reachable id on a symmetrized graph).
package testutil

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
)

// RefGraph is a generated graph: `Nodes` vertices with ids 0..Nodes-1
// and a directed multigraph edge list.
type RefGraph struct {
	Nodes int64
	Edges []core.Edge
}

// RandomGraph generates a seeded random directed graph with `nodes`
// vertices and `edges` edges (self loops excluded, parallel edges
// allowed — both engine paths count them consistently). Weights are
// uniform in [0.5, 2.5).
func RandomGraph(seed int64, nodes, edges int) *RefGraph {
	rng := rand.New(rand.NewSource(seed))
	g := &RefGraph{Nodes: int64(nodes)}
	for len(g.Edges) < edges {
		src, dst := int64(rng.Intn(nodes)), int64(rng.Intn(nodes))
		if src == dst {
			continue
		}
		g.Edges = append(g.Edges, core.Edge{
			Src: src, Dst: dst,
			Weight:  0.5 + 2*rng.Float64(),
			Created: int64(len(g.Edges)),
		})
	}
	return g
}

// Symmetrized returns a copy with every edge mirrored (the shape the
// connected-components drivers expect).
func (g *RefGraph) Symmetrized() *RefGraph {
	out := &RefGraph{Nodes: g.Nodes, Edges: make([]core.Edge, 0, 2*len(g.Edges))}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, e,
			core.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight, Created: e.Created})
	}
	return out
}

// Load materializes the graph into db under the given name, creating
// every vertex 0..Nodes-1 (including isolated ones).
func (g *RefGraph) Load(db *engine.DB, name string) (*core.Graph, error) {
	return g.LoadSharded(db, name, 1)
}

// LoadSharded is Load with the graph's tables hash-partitioned into
// the given number of shards (1 = the historical single-shard layout).
func (g *RefGraph) LoadSharded(db *engine.DB, name string, shards int) (*core.Graph, error) {
	cg, err := core.CreateGraphSharded(db, name, shards)
	if err != nil {
		return nil, err
	}
	vals := make(map[int64]string, g.Nodes)
	for v := int64(0); v < g.Nodes; v++ {
		vals[v] = ""
	}
	if err := cg.BulkLoad(vals, g.Edges); err != nil {
		return nil, err
	}
	return cg, nil
}

// edgeWeight applies the shared weight convention: unit weights, or
// the edge weight with non-positive values counting as 1.
func edgeWeight(e core.Edge, unitWeights bool) float64 {
	if unitWeights || e.Weight <= 0 {
		return 1
	}
	return e.Weight
}

// RefPageRank is the reference PageRank: `iterations` synchronous
// rounds of rank[v] = (1-d)/n + d·Σ rank[u]/outdeg[u] over in-edges,
// from a uniform 1/n start, without dangling-mass redistribution —
// the convention both engine paths implement.
func RefPageRank(g *RefGraph, iterations int, damping float64) map[int64]float64 {
	n := float64(g.Nodes)
	if g.Nodes == 0 {
		return map[int64]float64{}
	}
	outdeg := make(map[int64]int, g.Nodes)
	for _, e := range g.Edges {
		outdeg[e.Src]++
	}
	rank := make(map[int64]float64, g.Nodes)
	for v := int64(0); v < g.Nodes; v++ {
		rank[v] = 1 / n
	}
	for it := 0; it < iterations; it++ {
		acc := make(map[int64]float64, g.Nodes)
		for _, e := range g.Edges {
			acc[e.Dst] += rank[e.Src] / float64(outdeg[e.Src])
		}
		next := make(map[int64]float64, g.Nodes)
		for v := int64(0); v < g.Nodes; v++ {
			next[v] = (1-damping)/n + damping*acc[v]
		}
		rank = next
	}
	return rank
}

// RefShortestPaths is the reference SSSP: Bellman-Ford iterated to a
// fixpoint. Only reached vertices appear in the result.
func RefShortestPaths(g *RefGraph, source int64, unitWeights bool) map[int64]float64 {
	dist := map[int64]float64{source: 0}
	for {
		improved := false
		for _, e := range g.Edges {
			d, ok := dist[e.Src]
			if !ok {
				continue
			}
			nd := d + edgeWeight(e, unitWeights)
			if cur, ok := dist[e.Dst]; !ok || nd < cur {
				dist[e.Dst] = nd
				improved = true
			}
		}
		if !improved {
			return dist
		}
	}
}

// RefComponents is the reference connected components: union-find over
// the edges ignoring direction, labeling every vertex with the minimum
// id of its component. On a symmetrized graph this equals the engines'
// minimum-reachable-id propagation.
func RefComponents(g *RefGraph) map[int64]int64 {
	parent := make(map[int64]int64, g.Nodes)
	var find func(x int64) int64
	find = func(x int64) int64 {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b int64) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range g.Edges {
		union(e.Src, e.Dst)
	}
	minID := make(map[int64]int64)
	for v := int64(0); v < g.Nodes; v++ {
		r := find(v)
		if m, ok := minID[r]; !ok || v < m {
			minID[r] = v
		}
	}
	out := make(map[int64]int64, g.Nodes)
	for v := int64(0); v < g.Nodes; v++ {
		out[v] = minID[find(v)]
	}
	return out
}

// DropInf returns a copy of m without +Inf entries, normalizing the
// vertex-centric SSSP convention (unreachable → +Inf) to the SQL one
// (unreachable → absent).
func DropInf(m map[int64]float64) map[int64]float64 {
	out := make(map[int64]float64, len(m))
	for k, v := range m {
		if !math.IsInf(v, 1) {
			out[k] = v
		}
	}
	return out
}

// DiffFloatMaps returns an error describing the first few differences
// between got and want: missing/extra keys, or values further apart
// than tol·max(1, |want|). tol 0 demands bit-exact equality.
func DiffFloatMaps(name string, got, want map[int64]float64, tol float64) error {
	var diffs []string
	keys := unionKeys(len(got), len(want), func(add func(int64)) {
		for k := range got {
			add(k)
		}
		for k := range want {
			add(k)
		}
	})
	for _, k := range keys {
		gv, gok := got[k]
		wv, wok := want[k]
		switch {
		case !gok:
			diffs = append(diffs, fmt.Sprintf("%d: missing (want %v)", k, wv))
		case !wok:
			diffs = append(diffs, fmt.Sprintf("%d: unexpected %v", k, gv))
		case math.Abs(gv-wv) > tol*math.Max(1, math.Abs(wv)):
			diffs = append(diffs, fmt.Sprintf("%d: got %.15g want %.15g", k, gv, wv))
		}
		if len(diffs) >= 5 {
			break
		}
	}
	if len(diffs) > 0 {
		return fmt.Errorf("%s: %d keys differ, first: %v", name, len(diffs), diffs)
	}
	return nil
}

// DiffIntMaps is DiffFloatMaps for exact integer labelings.
func DiffIntMaps(name string, got, want map[int64]int64) error {
	var diffs []string
	keys := unionKeys(len(got), len(want), func(add func(int64)) {
		for k := range got {
			add(k)
		}
		for k := range want {
			add(k)
		}
	})
	for _, k := range keys {
		gv, gok := got[k]
		wv, wok := want[k]
		switch {
		case !gok:
			diffs = append(diffs, fmt.Sprintf("%d: missing (want %d)", k, wv))
		case !wok:
			diffs = append(diffs, fmt.Sprintf("%d: unexpected %d", k, gv))
		case gv != wv:
			diffs = append(diffs, fmt.Sprintf("%d: got %d want %d", k, gv, wv))
		}
		if len(diffs) >= 5 {
			break
		}
	}
	if len(diffs) > 0 {
		return fmt.Errorf("%s: %d keys differ, first: %v", name, len(diffs), diffs)
	}
	return nil
}

// unionKeys collects and sorts the union of map keys so diff reports
// are deterministic.
func unionKeys(n1, n2 int, visit func(add func(int64))) []int64 {
	seen := make(map[int64]bool, n1+n2)
	var keys []int64
	visit(func(k int64) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
