package testutil

import (
	"context"
	"errors"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/sqlgraph"
)

// The differential harness: for seeded random graphs, the in-memory
// reference, the vertex-centric runtime and the SQL path must agree on
// PageRank / SSSP / connected components at several executor
// parallelism levels (including 1, the serial baseline), and the SQL
// path must be *byte-identical* across parallelism levels.

var workerLevels = []int{1, 2, 8}

// lowMorsels forces morsel splitting on test-sized inputs and restores
// the default afterwards.
func lowMorsels(t *testing.T) {
	t.Helper()
	old := exec.MinMorselRows
	exec.MinMorselRows = 16
	t.Cleanup(func() { exec.MinMorselRows = old })
}

func loadOrFatal(t *testing.T, g *RefGraph, workers int) *core.Graph {
	t.Helper()
	db := engine.New()
	db.SetParallelism(workers)
	cg, err := g.Load(db, "diff")
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func TestDifferentialPageRank(t *testing.T) {
	lowMorsels(t)
	ctx := context.Background()
	for _, seed := range []int64{1, 42} {
		g := RandomGraph(seed, 80, 400)
		ref := RefPageRank(g, 8, 0.85)
		var serial, serialVx map[int64]float64
		for _, w := range workerLevels {
			cg := loadOrFatal(t, g, w)
			sqlRanks, err := sqlgraph.PageRank(ctx, cg, 8, 0.85)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if err := DiffFloatMaps("sql vs ref", sqlRanks, ref, 1e-9); err != nil {
				t.Errorf("seed %d workers %d: %v", seed, w, err)
			}
			vxRanks, _, err := algorithms.RunPageRank(ctx, cg, 8, core.Options{Workers: w})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if err := DiffFloatMaps("vertex vs ref", vxRanks, ref, 1e-9); err != nil {
				t.Errorf("seed %d workers %d: %v", seed, w, err)
			}
			if w == 1 {
				serial = sqlRanks
				serialVx = vxRanks
				continue
			}
			if err := DiffFloatMaps("sql parallel vs serial", sqlRanks, serial, 0); err != nil {
				t.Errorf("seed %d workers %d not byte-identical: %v", seed, w, err)
			}
			// The vertex runtime sorts messages before float combining
			// and folds aggregators in partition order, so it too is
			// bit-identical at any worker count (the serving layer's
			// budget can shrink the pool without changing results).
			if err := DiffFloatMaps("vertex parallel vs serial", vxRanks, serialVx, 0); err != nil {
				t.Errorf("seed %d workers %d vertex run not byte-identical: %v", seed, w, err)
			}
		}
	}
}

func TestDifferentialShortestPaths(t *testing.T) {
	lowMorsels(t)
	ctx := context.Background()
	for _, unit := range []bool{true, false} {
		g := RandomGraph(7, 70, 280)
		source := int64(0)
		ref := RefShortestPaths(g, source, unit)
		var serial map[int64]float64
		for _, w := range workerLevels {
			cg := loadOrFatal(t, g, w)
			sqlDist, err := sqlgraph.ShortestPaths(ctx, cg, source, unit)
			if err != nil {
				t.Fatalf("unit %v workers %d: %v", unit, w, err)
			}
			if err := DiffFloatMaps("sql vs ref", sqlDist, ref, 1e-12); err != nil {
				t.Errorf("unit %v workers %d: %v", unit, w, err)
			}
			vxDist, _, err := algorithms.RunSSSP(ctx, cg, source, unit, core.Options{Workers: w})
			if err != nil {
				t.Fatalf("unit %v workers %d: %v", unit, w, err)
			}
			if err := DiffFloatMaps("vertex vs ref", DropInf(vxDist), ref, 1e-12); err != nil {
				t.Errorf("unit %v workers %d: %v", unit, w, err)
			}
			if w == 1 {
				serial = sqlDist
			} else if err := DiffFloatMaps("sql parallel vs serial", sqlDist, serial, 0); err != nil {
				t.Errorf("unit %v workers %d not byte-identical: %v", unit, w, err)
			}
		}
	}
}

func TestDifferentialConnectedComponents(t *testing.T) {
	lowMorsels(t)
	ctx := context.Background()
	// Sparse so the graph has several components.
	g := RandomGraph(11, 90, 60).Symmetrized()
	ref := RefComponents(g)
	var serial map[int64]int64
	for _, w := range workerLevels {
		cg := loadOrFatal(t, g, w)
		sqlLabels, err := sqlgraph.ConnectedComponents(ctx, cg)
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if err := DiffIntMaps("sql vs ref", sqlLabels, ref); err != nil {
			t.Errorf("workers %d: %v", w, err)
		}
		vxLabels, _, err := algorithms.RunConnectedComponents(ctx, cg, core.Options{Workers: w})
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if err := DiffIntMaps("vertex vs ref", vxLabels, ref); err != nil {
			t.Errorf("workers %d: %v", w, err)
		}
		if w == 1 {
			serial = sqlLabels
		} else if err := DiffIntMaps("sql parallel vs serial", sqlLabels, serial); err != nil {
			t.Errorf("workers %d not identical: %v", w, err)
		}
	}
}

// TestDifferentialCancellation asserts the plumbed-through context
// actually stops the SQL drivers: a pre-cancelled context must surface
// context.Canceled, not run to completion.
func TestDifferentialCancellation(t *testing.T) {
	g := RandomGraph(3, 40, 160)
	cg := loadOrFatal(t, g, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sqlgraph.PageRank(ctx, cg, 5, 0.85); !errors.Is(err, context.Canceled) {
		t.Errorf("PageRank with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := sqlgraph.ShortestPaths(ctx, cg, 0, true); !errors.Is(err, context.Canceled) {
		t.Errorf("ShortestPaths with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := sqlgraph.ConnectedComponents(ctx, cg); !errors.Is(err, context.Canceled) {
		t.Errorf("ConnectedComponents with cancelled ctx: err = %v, want context.Canceled", err)
	}
}
