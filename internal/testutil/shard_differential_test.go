package testutil

import (
	"context"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlgraph"
)

// Sharded differential matrix: the same graph loaded at SHARDS 1, 4
// and 16 must produce correct results at every worker level, and at a
// fixed shard layout the results must be *byte-identical* across
// worker levels — partitioned scans, shard-local morsels and the
// partitioned join build may change scheduling but never the answer.
//
// Across shard counts the SQL path is compared within float tolerance,
// not byte-for-byte: sharding permutes physical row order (shard-major)
// and float aggregation folds in row order. The vertex runtime, which
// sorts its inputs and messages, is byte-identical across shard counts
// too when the partition count is pinned.

var shardLevels = []int{1, 4, 16}

func TestShardDifferentialPageRank(t *testing.T) {
	lowMorsels(t)
	ctx := context.Background()
	g := RandomGraph(42, 80, 400)
	ref := RefPageRank(g, 8, 0.85)

	// Vertex-runtime baseline: pinned partition count makes the run
	// layout-independent, so it must be byte-identical across EVERY
	// (shards, workers) cell.
	var vxBase map[int64]float64

	for _, shards := range shardLevels {
		var serial map[int64]float64 // SQL baseline for this shard layout
		for _, w := range workerLevels {
			db := engine.New()
			db.SetParallelism(w)
			cg, err := g.LoadSharded(db, "diff", shards)
			if err != nil {
				t.Fatalf("shards %d: %v", shards, err)
			}
			sqlRanks, err := sqlgraph.PageRank(ctx, cg, 8, 0.85)
			if err != nil {
				t.Fatalf("shards %d workers %d: %v", shards, w, err)
			}
			if err := DiffFloatMaps("sql vs ref", sqlRanks, ref, 1e-9); err != nil {
				t.Errorf("shards %d workers %d: %v", shards, w, err)
			}
			if serial == nil {
				serial = sqlRanks
			} else if err := DiffFloatMaps("sql parallel vs serial", sqlRanks, serial, 0); err != nil {
				t.Errorf("shards %d workers %d not byte-identical: %v", shards, w, err)
			}

			vxRanks, _, err := algorithms.RunPageRank(ctx, cg, 8, core.Options{Workers: w, Partitions: 16})
			if err != nil {
				t.Fatalf("shards %d workers %d: %v", shards, w, err)
			}
			if vxBase == nil {
				vxBase = vxRanks
				if err := DiffFloatMaps("vertex vs ref", vxRanks, ref, 1e-9); err != nil {
					t.Errorf("shards %d workers %d: %v", shards, w, err)
				}
			} else if err := DiffFloatMaps("vertex vs baseline", vxRanks, vxBase, 0); err != nil {
				t.Errorf("shards %d workers %d vertex run not byte-identical: %v", shards, w, err)
			}
		}
	}
}

func TestShardDifferentialComponents(t *testing.T) {
	lowMorsels(t)
	ctx := context.Background()
	g := RandomGraph(11, 90, 60).Symmetrized()
	ref := RefComponents(g)
	for _, shards := range shardLevels {
		for _, w := range workerLevels {
			db := engine.New()
			db.SetParallelism(w)
			cg, err := g.LoadSharded(db, "diff", shards)
			if err != nil {
				t.Fatalf("shards %d: %v", shards, err)
			}
			sqlLabels, err := sqlgraph.ConnectedComponents(ctx, cg)
			if err != nil {
				t.Fatalf("shards %d workers %d: %v", shards, w, err)
			}
			// Integer labels: exact equality must hold across EVERY cell.
			if err := DiffIntMaps("sql vs ref", sqlLabels, ref); err != nil {
				t.Errorf("shards %d workers %d: %v", shards, w, err)
			}
			vxLabels, _, err := algorithms.RunConnectedComponents(ctx, cg, core.Options{Workers: w})
			if err != nil {
				t.Fatalf("shards %d workers %d: %v", shards, w, err)
			}
			if err := DiffIntMaps("vertex vs ref", vxLabels, ref); err != nil {
				t.Errorf("shards %d workers %d: %v", shards, w, err)
			}
		}
	}
}

// TestShardDifferentialSQL checks plain SQL statements — point lookups
// (shard-routed by the planner), full scans, joins and aggregates —
// return identical rows at every shard count.
func TestShardDifferentialSQL(t *testing.T) {
	lowMorsels(t)
	queries := []string{
		"SELECT id, value FROM diff_vertex WHERE id = 7",
		"SELECT COUNT(*) FROM diff_edge",
		"SELECT src, COUNT(*) AS deg FROM diff_edge GROUP BY src ORDER BY src",
		"SELECT v.id, COUNT(e.dst) AS outdeg FROM diff_vertex v JOIN diff_edge e ON v.id = e.src GROUP BY v.id ORDER BY v.id",
		"SELECT id FROM diff_vertex ORDER BY id LIMIT 10",
	}
	g := RandomGraph(5, 60, 300)
	var base [][]string
	for _, shards := range shardLevels {
		for _, w := range workerLevels {
			db := engine.New()
			db.SetParallelism(w)
			if _, err := g.LoadSharded(db, "diff", shards); err != nil {
				t.Fatalf("shards %d: %v", shards, err)
			}
			var got [][]string
			for _, q := range queries {
				rows, err := db.Query(q)
				if err != nil {
					t.Fatalf("shards %d workers %d %q: %v", shards, w, q, err)
				}
				var rendered []string
				for i := 0; i < rows.Len(); i++ {
					line := ""
					for j, v := range rows.Row(i) {
						if j > 0 {
							line += "|"
						}
						line += v.String()
					}
					rendered = append(rendered, line)
				}
				got = append(got, rendered)
			}
			if base == nil {
				base = got
				continue
			}
			for qi := range queries {
				if len(got[qi]) != len(base[qi]) {
					t.Errorf("shards %d workers %d %q: %d rows, want %d", shards, w, queries[qi], len(got[qi]), len(base[qi]))
					continue
				}
				for ri := range got[qi] {
					if got[qi][ri] != base[qi][ri] {
						t.Errorf("shards %d workers %d %q row %d: got %s want %s", shards, w, queries[qi], ri, got[qi][ri], base[qi][ri])
					}
				}
			}
		}
	}
}
