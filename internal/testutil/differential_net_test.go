package testutil

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	vertexica "repro"
	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/wire"
)

// The network differential harness: the same seeded-graph corpus runs
// through the wire client against an in-process server, and every
// result — SQL result sets and graph-algorithm outputs — must be
// byte-identical to the in-process path. This pins down the whole
// serving stack: session dispatch, the column-wise batch codec, and
// the budget-bounded executor may not change a single bit.

func startDiffServer(t *testing.T, eng *vertexica.Engine) string {
	t.Helper()
	srv := server.New(eng, server.Config{WorkerBudget: 2})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil && !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv.Addr()
}

func TestDifferentialNetworkSQL(t *testing.T) {
	lowMorsels(t)
	queries := []string{
		"SELECT src, dst, weight, etype, created FROM net_edge ORDER BY src, dst, created",
		"SELECT src, COUNT(*), SUM(weight), MIN(weight), MAX(weight) FROM net_edge GROUP BY src ORDER BY src",
		"SELECT e1.src, e2.dst FROM net_edge AS e1 JOIN net_edge AS e2 ON e1.dst = e2.src WHERE e1.src < 5 ORDER BY e1.src, e2.dst, e1.created, e2.created",
		"SELECT COUNT(*) FROM net_edge WHERE weight > 1.5",
		"SELECT DISTINCT etype FROM net_edge",
		"SELECT id, halted FROM net_vertex ORDER BY id LIMIT 40 OFFSET 5",
	}
	for _, seed := range []int64{3, 19} {
		eng := vertexica.New()
		eng.SetParallelism(4)
		g := RandomGraph(seed, 60, 300)
		if _, err := g.Load(eng.DB(), "net"); err != nil {
			t.Fatal(err)
		}
		addr := startDiffServer(t, eng)
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for _, q := range queries {
			local, err := eng.DB().Query(q)
			if err != nil {
				t.Fatalf("seed %d local %q: %v", seed, q, err)
			}
			remote, err := c.Query(ctx, q)
			if err != nil {
				t.Fatalf("seed %d remote %q: %v", seed, q, err)
			}
			localData, err := local.Materialize()
			if err != nil {
				t.Fatalf("seed %d local %q: %v", seed, q, err)
			}
			if !wire.EqualBatches(remote.Data, localData) {
				t.Errorf("seed %d: network result differs from in-process for %q", seed, q)
			}
		}
		c.Close()
	}
}

func TestDifferentialNetworkAlgorithms(t *testing.T) {
	lowMorsels(t)
	eng := vertexica.New()
	eng.SetParallelism(2)
	ref := RandomGraph(23, 80, 400)
	if _, err := ref.Load(eng.DB(), "net"); err != nil {
		t.Fatal(err)
	}
	g, err := eng.OpenGraph("net")
	if err != nil {
		t.Fatal(err)
	}
	addr := startDiffServer(t, eng)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// PageRank: wire vs in-process vs independent reference.
	localRanks, _, err := g.PageRank(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	wireRanks, err := c.PageRank(ctx, "net", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffFloatMaps("pagerank wire vs local", wireRanks, localRanks, 0); err != nil {
		t.Error(err)
	}
	if err := DiffFloatMaps("pagerank wire vs ref", wireRanks, RefPageRank(ref, 8, 0.85), 1e-9); err != nil {
		t.Error(err)
	}

	// SSSP via verb (unit weights so the reference applies).
	rows, err := c.Graph(ctx, "sssp", "net", "0", "1")
	if err != nil {
		t.Fatal(err)
	}
	wireDist := make(map[int64]float64, rows.Len())
	for i := 0; i < rows.Len(); i++ {
		wireDist[rows.Value(i, 0).I] = rows.Value(i, 1).F
	}
	localDist, _, err := g.ShortestPaths(ctx, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffFloatMaps("sssp wire vs local", wireDist, localDist, 0); err != nil {
		t.Error(err)
	}
	if err := DiffFloatMaps("sssp wire vs ref", DropInf(wireDist), RefShortestPaths(ref, 0, true), 1e-12); err != nil {
		t.Error(err)
	}

	// Components (SQL flavor) via verb.
	rows, err = c.Graph(ctx, "components-sql", "net")
	if err != nil {
		t.Fatal(err)
	}
	wireLabels := make(map[int64]int64, rows.Len())
	for i := 0; i < rows.Len(); i++ {
		wireLabels[rows.Value(i, 0).I] = rows.Value(i, 1).I
	}
	localLabels, err := g.ConnectedComponentsSQL(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffIntMaps("components wire vs local", wireLabels, localLabels); err != nil {
		t.Error(err)
	}

	// Prepared statements bind the same values the literal form does.
	st, err := c.Prepare(ctx, "SELECT COUNT(*) FROM net_edge WHERE src = $1 AND weight > $2")
	if err != nil {
		t.Fatal(err)
	}
	for src := int64(0); src < 5; src++ {
		prows, err := st.Query(ctx, vertexica.Int64Value(src), vertexica.Float64Value(1.0))
		if err != nil {
			t.Fatal(err)
		}
		local, err := eng.DB().Query(fmt.Sprintf(
			"SELECT COUNT(*) FROM net_edge WHERE src = %d AND weight > 1", src))
		if err != nil {
			t.Fatal(err)
		}
		if prows.Value(0, 0).I != local.Value(0, 0).I {
			t.Errorf("prepared count for src %d: wire %d local %d", src, prows.Value(0, 0).I, local.Value(0, 0).I)
		}
	}

	if hw, cap := eng.WorkerBudget().HighWater(), eng.WorkerBudget().Capacity(); hw > cap {
		t.Errorf("budget overshot during differential run: %d > %d", hw, cap)
	}
}
