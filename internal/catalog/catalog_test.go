package catalog

import (
	"sync"
	"testing"

	"repro/internal/storage"
)

func schema() storage.Schema {
	return storage.NewSchema(storage.Col("id", storage.TypeInt64))
}

func TestCreateGetDrop(t *testing.T) {
	c := New()
	if _, err := c.Create("t", schema()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("T", schema()); err == nil {
		t.Error("names are case-insensitive; duplicate should fail")
	}
	tb, err := c.Get("T")
	if err != nil || tb.Name() != "t" {
		t.Errorf("case-insensitive get failed: %v", err)
	}
	if !c.Has("t") {
		t.Error("Has should see the table")
	}
	if err := c.Drop("t"); err != nil {
		t.Fatal(err)
	}
	if c.Has("t") {
		t.Error("dropped table still visible")
	}
	if err := c.Drop("t"); err == nil {
		t.Error("dropping missing table should fail")
	}
	if _, err := c.Get("t"); err == nil {
		t.Error("getting missing table should fail")
	}
}

func TestPutReplaces(t *testing.T) {
	c := New()
	t1 := storage.NewTable("x", schema())
	_ = t1.AppendRow(storage.Int64(1))
	c.Put(t1)
	t2 := storage.NewTable("x", schema())
	c.Put(t2)
	got, _ := c.Get("x")
	if got.NumRows() != 0 {
		t.Error("Put should replace the table object")
	}
}

func TestNamesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.Create(n, schema()); err != nil {
			t.Fatal(err)
		}
	}
	names := c.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("names = %v", names)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			if _, err := c.Create(name, schema()); err != nil {
				t.Error(err)
			}
			for j := 0; j < 100; j++ {
				c.Has(name)
				c.Names()
			}
		}(i)
	}
	wg.Wait()
	if len(c.Names()) != 8 {
		t.Errorf("tables = %v", c.Names())
	}
}
