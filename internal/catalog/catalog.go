// Package catalog maintains the database's table namespace. It is
// deliberately small: named tables with schemas, case-insensitive
// lookup, and listing — the engine layers transactions and persistence
// on top.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// Catalog is a concurrency-safe table namespace.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*storage.Table
	// version counts namespace changes (create/drop/replace). Cached
	// plans are keyed on it: any DDL bumps it, invalidating every plan
	// prepared against the old namespace.
	version atomic.Uint64
}

// Version returns the current namespace version.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*storage.Table)}
}

func key(name string) string { return strings.ToLower(name) }

// Create adds a new single-shard table. It fails if the name is taken.
func (c *Catalog) Create(name string, schema storage.Schema) (*storage.Table, error) {
	return c.CreateSharded(name, schema, -1, 1)
}

// CreateSharded adds a new table hash-partitioned on column keyCol
// into shards partitions (shards <= 1 with keyCol -1 creates a plain
// single-shard table). It fails if the name is taken or the partition
// column is invalid.
func (c *Catalog) CreateSharded(name string, schema storage.Schema, keyCol, shards int) (*storage.Table, error) {
	if shards > 1 && (keyCol < 0 || keyCol >= schema.Len()) {
		return nil, fmt.Errorf("catalog: table %q: partition column index %d out of range", name, keyCol)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := storage.NewShardedTable(name, schema, keyCol, shards)
	c.tables[k] = t
	c.version.Add(1)
	return t, nil
}

// Get looks up a table by name.
func (c *Catalog) Get(name string) (*storage.Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// Has reports whether the table exists.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[key(name)]
	return ok
}

// Drop removes a table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, k)
	c.version.Add(1)
	return nil
}

// Put installs (or replaces) a table object under its name. Used by the
// transaction layer to restore undo images and by the vertex runtime's
// replace optimization.
func (c *Catalog) Put(t *storage.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[key(t.Name())] = t
	c.version.Add(1)
}

// Names lists table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}
