package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	vertexica "repro"
	"repro/internal/client"
)

// End-to-end tracing over the wire: Done-frame trailers carry the trace
// id and server time, the vx$ system tables answer remote SQL, and
// SHOW STATS stays consistent while statements hammer the engine.

func TestWireTraceTrailer(t *testing.T) {
	eng := vertexica.New()
	_, addr := startServer(t, eng, Config{})
	c := dialT(t, addr)
	ctx := context.Background()

	if _, err := c.Exec(ctx, "CREATE TABLE pts (id INTEGER NOT NULL, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, "INSERT INTO pts VALUES (1, 1.5), (2, 2.5), (3, 3.5)"); err != nil {
		t.Fatal(err)
	}

	rows, err := c.Query(ctx, "SELECT * FROM pts ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	tid := rows.TraceID()
	if tid == 0 {
		t.Fatal("Done trailer carries no trace_id")
	}
	if rows.ServerTime() <= 0 {
		t.Fatal("Done trailer carries no server_us")
	}

	// The trailer's id joins the server's trace ring through plain SQL.
	joined, err := c.Query(ctx, fmt.Sprintf(
		"SELECT stmt FROM vx$traces WHERE trace_id = %d", tid))
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 1 || joined.Value(0, 0).S != "SELECT * FROM pts ORDER BY id" {
		t.Fatalf("vx$traces join for trace %d = %d rows %q",
			tid, joined.Len(), joined.Data)
	}

	// Each statement gets a fresh id (the join query itself was traced).
	if joined.TraceID() == 0 || joined.TraceID() == tid {
		t.Errorf("second statement trace id = %d (first was %d)", joined.TraceID(), tid)
	}

	// The ISSUE's acceptance query, over a live server.
	top, err := c.Query(ctx, "SELECT * FROM vx$traces ORDER BY total_ns DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() == 0 || top.Len() > 5 {
		t.Fatalf("vx$traces top-5 returned %d rows", top.Len())
	}

	// A remote session's queue wait surfaces as an admission span:
	// pipelined statements wait on the per-session executor. Just
	// verify the span table is reachable and depth-0 spans exist for
	// the traced statement.
	spans, err := c.Query(ctx, fmt.Sprintf(
		"SELECT stage FROM vx$trace_spans WHERE trace_id = %d AND depth = 0 ORDER BY seq", tid))
	if err != nil {
		t.Fatal(err)
	}
	if spans.Len() < 3 {
		t.Fatalf("trace %d has %d depth-0 spans over the wire", tid, spans.Len())
	}
	var sawDrain bool
	for i := 0; i < spans.Len(); i++ {
		if spans.Value(i, 0).S == "drain" {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Errorf("no drain span in remote trace %d", tid)
	}
}

// TestWireShowStatsUnderLoad runs SHOW STATS over one connection while
// other connections execute statements — the registry snapshot and the
// histogram quantiles must stay readable and monotonic under load (the
// -race build is the real assertion).
func TestWireShowStatsUnderLoad(t *testing.T) {
	eng := vertexica.New()
	_, addr := startServer(t, eng, Config{})
	ctx := context.Background()

	setup := dialT(t, addr)
	if _, err := setup.Exec(ctx, "CREATE TABLE load (id INTEGER NOT NULL, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec(ctx, "INSERT INTO load VALUES (1, 1.0), (2, 2.0), (3, 3.0)"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 40; i++ {
				if _, err := c.Query(ctx, "SELECT COUNT(*), SUM(v) FROM load"); err != nil {
					t.Errorf("load query: %v", err)
					return
				}
			}
		}()
	}

	statsConn := dialT(t, addr)
	var lastCount int64
	for i := 0; i < 20; i++ {
		rows, err := statsConn.Query(ctx, "SHOW STATS")
		if err != nil {
			t.Fatal(err)
		}
		var count int64 = -1
		for r := 0; r < rows.Len(); r++ {
			if rows.Value(r, 0).S == "engine.statement_latency.count" {
				count = rows.Value(r, 1).I
			}
		}
		if count < lastCount {
			t.Fatalf("statement_latency.count went backwards: %d -> %d", lastCount, count)
		}
		lastCount = count
	}
	wg.Wait()
	if lastCount == 0 {
		t.Error("statement_latency.count stayed 0 under load")
	}
}
