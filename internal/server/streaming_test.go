package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	vertexica "repro"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/wire"
)

// gateOp emits one batch, then refuses to produce the second until the
// gate channel is closed. It proves writeRows streams: the first
// RowsBatch frame must reach the client while the operator still has
// output pending.
type gateOp struct {
	schema storage.Schema
	gate   chan struct{}
	sent   int
}

func (g *gateOp) Schema() storage.Schema { return g.schema }
func (g *gateOp) Open() error            { g.sent = 0; return nil }
func (g *gateOp) Close() error           { return nil }

func (g *gateOp) Next() (*storage.Batch, error) {
	switch g.sent {
	case 0:
		g.sent++
		return g.batch(1), nil
	case 1:
		select {
		case <-g.gate:
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("gate never opened: writeRows drained the operator before shipping the first batch")
		}
		g.sent++
		return g.batch(2), nil
	default:
		return nil, nil
	}
}

func (g *gateOp) batch(v int64) *storage.Batch {
	b := storage.NewBatch(g.schema)
	if err := b.AppendRow(storage.Int64(v)); err != nil {
		panic(err)
	}
	return b
}

// pipeSession returns a session writing to one end of an in-memory
// pipe and a reader for the other end.
func pipeSession(t *testing.T) (*session, *bufio.Reader, net.Conn) {
	t.Helper()
	serverEnd, clientEnd := net.Pipe()
	t.Cleanup(func() { serverEnd.Close(); clientEnd.Close() })
	ss := &session{conn: serverEnd, bw: bufio.NewWriter(serverEnd)}
	return ss, bufio.NewReader(clientEnd), clientEnd
}

// readFrameTimeout reads one frame or fails the test after the
// deadline (net.Pipe blocks forever otherwise).
func readFrameTimeout(t *testing.T, conn net.Conn, br *bufio.Reader) (byte, []byte) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadFrame(br)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return typ, payload
}

// TestWriteRowsStreamsBeforeCompletion asserts the first RowsBatch
// frame ships before the executor has finished producing the result:
// the operator's second batch is gated on the client having received
// the first one.
func TestWriteRowsStreamsBeforeCompletion(t *testing.T) {
	op := &gateOp{
		schema: storage.NewSchema(storage.Col("x", storage.TypeInt64)),
		gate:   make(chan struct{}),
	}
	rows, err := engine.OperatorRows(op)
	if err != nil {
		t.Fatal(err)
	}
	ss, br, clientEnd := pipeSession(t)
	go ss.writeRows(7, rows)

	typ, _ := readFrameTimeout(t, clientEnd, br)
	if typ != wire.FrameRowsHeader {
		t.Fatalf("first frame %#x, want RowsHeader", typ)
	}
	typ, payload := readFrameTimeout(t, clientEnd, br)
	if typ != wire.FrameRowsBatch {
		t.Fatalf("second frame %#x, want RowsBatch", typ)
	}
	// The first batch arrived while the operator still has output
	// pending: release it and expect the rest plus Done.
	close(op.gate)
	r := &wire.Reader{B: payload}
	if id := r.U32(); id != 7 {
		t.Fatalf("batch for statement %d, want 7", id)
	}
	typ, _ = readFrameTimeout(t, clientEnd, br)
	if typ != wire.FrameRowsBatch {
		t.Fatalf("third frame %#x, want RowsBatch", typ)
	}
	typ, _ = readFrameTimeout(t, clientEnd, br)
	if typ != wire.FrameDone {
		t.Fatalf("final frame %#x, want Done", typ)
	}
}

// badColumn satisfies storage.Column but is not a concrete column type
// the wire encoder knows, forcing wire.AppendBatch to fail mid-stream.
type badColumn struct{}

func (badColumn) Type() storage.Type                { return storage.TypeInt64 }
func (badColumn) Len() int                          { return 1 }
func (badColumn) IsNull(int) bool                   { return false }
func (badColumn) Value(int) storage.Value           { return storage.Int64(1) }
func (badColumn) Append(storage.Value) error        { return nil }
func (badColumn) AppendNull()                       {}
func (badColumn) Slice(from, to int) storage.Column { return badColumn{} }
func (badColumn) Gather(idx []int) storage.Column   { return badColumn{} }

// TestMidStreamEncodeErrorTerminatesStatement asserts the error
// protocol: when the encoder fails after the header shipped, the
// server sends FrameError and nothing else for that statement — no
// Done follows an Error.
func TestMidStreamEncodeErrorTerminatesStatement(t *testing.T) {
	batch := &storage.Batch{
		Schema: storage.NewSchema(storage.Col("x", storage.TypeInt64)),
		Cols:   []storage.Column{badColumn{}},
	}
	ss, br, clientEnd := pipeSession(t)
	go func() {
		ss.writeRows(5, engine.MaterializedRows(batch))
		// Sentinel after writeRows returns: if the protocol were
		// violated, a Done for statement 5 would precede this.
		ss.writeDone(99)
	}()

	typ, _ := readFrameTimeout(t, clientEnd, br)
	if typ != wire.FrameRowsHeader {
		t.Fatalf("first frame %#x, want RowsHeader", typ)
	}
	typ, payload := readFrameTimeout(t, clientEnd, br)
	if typ != wire.FrameError {
		t.Fatalf("second frame %#x, want Error (encoder failed)", typ)
	}
	r := &wire.Reader{B: payload}
	if id := r.U32(); id != 5 {
		t.Fatalf("error for statement %d, want 5", id)
	}
	if msg := r.String(); msg == "" {
		t.Fatal("error frame carries no message")
	}
	// The next frame must be the sentinel, not a Done for statement 5.
	typ, payload = readFrameTimeout(t, clientEnd, br)
	r = &wire.Reader{B: payload}
	if typ != wire.FrameDone || r.U32() != 99 {
		t.Fatalf("statement 5 was followed by frame %#x/%d; Error must be terminal", typ, r.U32())
	}
}

// TestStalledClientReleasesReadLatch locks in the availability
// contract of streaming results. Historically a stalled client held
// the engine's read latch until the per-frame write deadline fired;
// under MVCC it holds only a snapshot pin and writers proceed at once
// (TestStalledClientNoLongerBlocksWriters asserts that directly).
// WriteTimeout still matters: it reaps the dead connection so the
// pinned snapshot and session slot are reclaimed.
func TestStalledClientReleasesReadLatch(t *testing.T) {
	eng := vertexica.New()
	if _, err := eng.DB().Exec("CREATE TABLE big (id INTEGER NOT NULL, w DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	tb, err := eng.DB().Catalog().Get("big")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000; i++ {
		if err := tb.AppendRow(storage.Int64(int64(i)), storage.Float64(float64(i)*0.7)); err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startServer(t, eng, Config{WriteTimeout: 300 * time.Millisecond})

	// Raw client: handshake, issue a big streaming SELECT, read only
	// the header, then stop draining the socket.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello wire.Buffer
	hello.PutUvarint(wire.ProtocolVersion)
	hello.PutString("stalled-test-client")
	if err := wire.WriteFrame(conn, wire.FrameHello, hello.B); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	if typ, _, err := wire.ReadFrame(br); err != nil || typ != wire.FrameHelloOK {
		t.Fatalf("handshake: %#x %v", typ, err)
	}
	var q wire.Buffer
	q.PutU32(1)
	q.PutString("SELECT id, w FROM big")
	if err := wire.WriteFrame(conn, wire.FrameQuery, q.B); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(br); err != nil || typ != wire.FrameRowsHeader {
		t.Fatalf("header: %#x %v", typ, err)
	}
	// Stall: stop reading. The server fills the socket buffers, blocks
	// in a frame write holding the read latch, and must unwind at the
	// write deadline.

	// A writer on a second connection must get through well within the
	// deadline-plus-slack window.
	c2 := dialT(t, addr)
	defer c2.Close()
	wctx, wcancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer wcancel()
	start := time.Now()
	if _, err := c2.Exec(wctx, "INSERT INTO big VALUES (1000001, 1.0)"); err != nil {
		t.Fatalf("write blocked behind a stalled streaming client: %v", err)
	}
	t.Logf("write completed %v after the stall began", time.Since(start))
}
