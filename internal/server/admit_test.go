package server

import (
	"bufio"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	vertexica "repro"
	"repro/internal/client"
	"repro/internal/storage"
	"repro/internal/wire"
)

// queueDepth reports how many handshakes wait in the admission queue.
func (s *Server) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.admitQ)
}

func waitForDepth(t *testing.T, srv *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.queueDepth() != want {
		if time.Now().After(deadline) {
			t.Fatalf("admission queue depth %d, want %d", srv.queueDepth(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAdmissionQueueFIFOGrant fills the server, queues two handshakes
// in a known order, and asserts freed slots are granted strictly
// first-come-first-served.
func TestAdmissionQueueFIFOGrant(t *testing.T) {
	eng := vertexica.New()
	srv, addr := startServer(t, eng, Config{MaxSessions: 1, AdmitQueue: 4, AdmitWait: 30 * time.Second})

	c1 := dialT(t, addr)

	type result struct {
		conn *client.Conn
		err  error
	}
	dialAsync := func() chan result {
		ch := make(chan result, 1)
		go func() {
			c, err := client.Dial(addr)
			ch <- result{c, err}
		}()
		return ch
	}
	// Queue the second connection, wait until it is parked, then queue
	// the third — arrival order is now deterministic.
	r2 := dialAsync()
	waitForDepth(t, srv, 1)
	r3 := dialAsync()
	waitForDepth(t, srv, 2)

	// Free one slot: the FIRST waiter must be admitted, the second
	// must still be parked.
	c1.Close()
	var c2 *client.Conn
	select {
	case res := <-r2:
		if res.err != nil {
			t.Fatalf("first waiter rejected: %v", res.err)
		}
		c2 = res.conn
	case <-time.After(5 * time.Second):
		t.Fatal("first waiter never granted the freed slot")
	}
	select {
	case res := <-r3:
		t.Fatalf("second waiter admitted out of order (err=%v)", res.err)
	case <-time.After(100 * time.Millisecond):
	}

	// Free another slot: now the second waiter gets in.
	c2.Close()
	select {
	case res := <-r3:
		if res.err != nil {
			t.Fatalf("second waiter rejected: %v", res.err)
		}
		res.conn.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("second waiter never granted the freed slot")
	}
}

// TestAdmissionQueueFullRejects asserts the wait list itself is
// bounded: with the queue at capacity the next handshake is rejected
// immediately, not parked.
func TestAdmissionQueueFullRejects(t *testing.T) {
	eng := vertexica.New()
	srv, addr := startServer(t, eng, Config{MaxSessions: 1, AdmitQueue: 1, AdmitWait: 30 * time.Second})

	c1 := dialT(t, addr)
	defer c1.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Parked waiter; released when c1 closes at test end.
		if c, err := client.Dial(addr); err == nil {
			c.Close()
		}
	}()
	waitForDepth(t, srv, 1)

	start := time.Now()
	_, err := client.Dial(addr)
	if err == nil || !strings.Contains(err.Error(), "admission queue full") {
		t.Fatalf("over-queue handshake not rejected: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("queue-full rejection took %v; it must not wait", time.Since(start))
	}
	c1.Close()
	<-done
}

// TestAdmissionQueueTimeout asserts AdmitWait backpressure: a waiter
// whose slot never frees is rejected after the bound.
func TestAdmissionQueueTimeout(t *testing.T) {
	eng := vertexica.New()
	_, addr := startServer(t, eng, Config{MaxSessions: 1, AdmitQueue: 4, AdmitWait: 150 * time.Millisecond})
	c1 := dialT(t, addr)
	defer c1.Close()

	start := time.Now()
	_, err := client.Dial(addr)
	if err == nil || !strings.Contains(err.Error(), "without a free slot") {
		t.Fatalf("queued handshake not timed out: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("timeout after %v, want ~AdmitWait", elapsed)
	}
}

// TestAdmissionQueueDrainsOnShutdown asserts queued handshakes are
// rejected promptly when the server shuts down instead of waiting out
// AdmitWait.
func TestAdmissionQueueDrainsOnShutdown(t *testing.T) {
	eng := vertexica.New()
	srv, addr := startServer(t, eng, Config{MaxSessions: 1, AdmitQueue: 4, AdmitWait: 30 * time.Second})
	c1 := dialT(t, addr)
	defer c1.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := client.Dial(addr)
		errCh <- err
	}()
	waitForDepth(t, srv, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go srv.Shutdown(ctx)
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("queued handshake admitted during shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued handshake not released by shutdown")
	}
}

// TestStalledClientNoLongerBlocksWriters is the serving-layer
// regression for the MVCC tentpole: a streaming client that stops
// draining its socket used to hold the engine's read latch until the
// server's WriteTimeout unwound the statement, stalling every writer
// for up to that long. With per-statement snapshots the writer commits
// immediately — asserted here with a WriteTimeout far longer than the
// test would tolerate waiting.
func TestStalledClientNoLongerBlocksWriters(t *testing.T) {
	eng := vertexica.New()
	if _, err := eng.DB().Exec("CREATE TABLE big (id INTEGER NOT NULL, w DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	tb, err := eng.DB().Catalog().Get("big")
	if err != nil {
		t.Fatal(err)
	}
	b := storage.NewBatch(tb.Schema())
	for i := 0; i < 500_000; i++ {
		if err := b.AppendRow(storage.Int64(int64(i)), storage.Float64(float64(i)*0.7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	// WriteTimeout is deliberately enormous: if the writer below had to
	// wait for the stalled stream to unwind, the test would time out.
	_, addr := startServer(t, eng, Config{WriteTimeout: 5 * time.Minute})

	// Raw client: handshake, issue a big streaming SELECT, read only
	// the header, then stop draining the socket.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello wire.Buffer
	hello.PutUvarint(wire.ProtocolVersion)
	hello.PutString("stalled-writer-test")
	if err := wire.WriteFrame(conn, wire.FrameHello, hello.B); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	if typ, _, err := wire.ReadFrame(br); err != nil || typ != wire.FrameHelloOK {
		t.Fatalf("handshake: %#x %v", typ, err)
	}
	var q wire.Buffer
	q.PutU32(1)
	q.PutString("SELECT id, w FROM big")
	if err := wire.WriteFrame(conn, wire.FrameQuery, q.B); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(br); err != nil || typ != wire.FrameRowsHeader {
		t.Fatalf("header: %#x %v", typ, err)
	}
	// Stall: stop reading. The server blocks writing into the socket
	// while the statement's snapshot stays pinned — but no latch is
	// held, so writers proceed at once.

	// Let the server actually wedge against the socket buffer first.
	time.Sleep(200 * time.Millisecond)

	var writers sync.WaitGroup
	c2 := dialT(t, addr)
	defer c2.Close()
	start := time.Now()
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	var werr error
	writers.Add(1)
	go func() {
		defer writers.Done()
		_, werr = c2.Exec(wctx, "INSERT INTO big VALUES (1000001, 1.0)")
	}()
	writers.Wait()
	if werr != nil {
		t.Fatalf("write blocked behind a stalled streaming client: %v", werr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("write took %v behind a stalled client; snapshots must decouple it", elapsed)
	}
	t.Logf("write committed %v after the stall began (WriteTimeout %v away)", time.Since(start), 5*time.Minute)
}
