// Package server is the network serving layer: a TCP server speaking
// the wire protocol (internal/wire) over a shared Vertexica engine.
// It is the piece that turns the embedded reproduction into what the
// paper actually describes — an RDBMS front end: many client
// connections, each with its own session (transaction scope, session
// variables, statement timeout), sharing one morsel-parallel executor
// under a global worker budget with admission control, so a PageRank
// run and a burst of SQL clients degrade predictably instead of
// thrashing.
//
// Concurrency shape per connection: a reader goroutine parses frames
// and enqueues statements; an executor goroutine runs them serially
// against the connection's engine.Session (sessions are single-
// statement-at-a-time, like a SQL connection); cancel frames bypass
// the queue and cancel the in-flight statement's context immediately.
// Frame writes are mutex-serialized.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	vertexica "repro"
)

// Config tunes the server.
type Config struct {
	// MaxSessions bounds concurrent client sessions (admission
	// control); further connections are rejected at handshake.
	// 0 means the default of 64.
	MaxSessions int
	// MaxStmtWorkers caps any single statement's parallelism
	// regardless of session settings (admission control's second
	// knob). 0 means uncapped.
	MaxStmtWorkers int
	// WorkerBudget, if > 0, installs a global worker budget of that
	// many extra workers on the engine (see Engine.SetWorkerBudget).
	// 0 leaves the engine's current budget untouched.
	WorkerBudget int
	// WriteTimeout bounds each response frame write. Results stream
	// while the statement holds the engine's read latch, so a client
	// that stops draining its socket would otherwise hold that latch
	// (and stall writers) indefinitely; past the deadline the write
	// fails, the statement's stream is released and the connection is
	// dropped. 0 means the default of 30s; negative disables it.
	WriteTimeout time.Duration
	// Logf, if non-nil, receives server logs.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// DefaultWorkerBudget is the vxserve default: one extra worker per
// core beyond each statement's own goroutine.
func DefaultWorkerBudget() int { return runtime.NumCPU() }

// Server serves one engine to many network sessions.
type Server struct {
	eng *vertexica.Engine
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*session
	nextID   uint64
	draining bool

	stmtWg sync.WaitGroup // in-flight statements (drain barrier)
	connWg sync.WaitGroup // live connection handlers
}

// New returns a server over the engine.
func New(eng *vertexica.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.WorkerBudget > 0 {
		eng.SetWorkerBudget(cfg.WorkerBudget)
	}
	return &Server{eng: eng, cfg: cfg, sessions: make(map[uint64]*session)}
}

// Engine exposes the served engine (tests and vxserve preloading).
func (s *Server) Engine() *vertexica.Engine { return s.eng }

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ErrServerClosed is returned by Serve after a graceful Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Listen starts listening on addr (e.g. "127.0.0.1:5433" or ":0")
// without accepting yet; Addr reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Shutdown. Call Listen first.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.connWg.Add(1)
		go func() {
			defer s.connWg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// beginStmt registers an in-flight statement with the drain barrier;
// it fails once draining has started.
func (s *Server) beginStmt() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.stmtWg.Add(1)
	return true
}

func (s *Server) endStmt() { s.stmtWg.Done() }

// admit registers a new session, enforcing the session bound.
func (s *Server) admit(ss *session) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, errors.New("server is shutting down")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return 0, fmt.Errorf("too many sessions (limit %d)", s.cfg.MaxSessions)
	}
	s.nextID++
	id := s.nextID
	s.sessions[id] = ss
	return id, nil
}

func (s *Server) unadmit(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, id)
}

// Shutdown drains the server: stop accepting, reject new statements,
// wait for in-flight statements to finish, then close every
// connection. If ctx expires first, in-flight statements are
// cancelled and connections closed immediately; Shutdown still waits
// for the handlers to unwind before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	drained := make(chan struct{})
	go func() {
		s.stmtWg.Wait()
		close(drained)
	}()
	var errOut error
	select {
	case <-drained:
	case <-ctx.Done():
		errOut = ctx.Err()
		for _, ss := range sessions {
			ss.cancelInflight()
		}
	}
	for _, ss := range sessions {
		ss.conn.Close() // unblocks the reader; handler unwinds
	}
	s.connWg.Wait()
	<-drained
	s.logf("server: drained (%v)", errOut)
	return errOut
}
