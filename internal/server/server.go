// Package server is the network serving layer: a TCP server speaking
// the wire protocol (internal/wire) over a shared Vertexica engine.
// It is the piece that turns the embedded reproduction into what the
// paper actually describes — an RDBMS front end: many client
// connections, each with its own session (transaction scope, session
// variables, statement timeout), sharing one morsel-parallel executor
// under a global worker budget with admission control, so a PageRank
// run and a burst of SQL clients degrade predictably instead of
// thrashing.
//
// Concurrency shape per connection: a reader goroutine parses frames
// and enqueues statements; an executor goroutine runs them serially
// against the connection's engine.Session (sessions are single-
// statement-at-a-time, like a SQL connection); cancel frames bypass
// the queue and cancel the in-flight statement's context immediately.
// Frame writes are mutex-serialized.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	vertexica "repro"
)

// Config tunes the server.
type Config struct {
	// MaxSessions bounds concurrent client sessions (admission
	// control); further handshakes wait in the admission queue (see
	// AdmitQueue) or are rejected. 0 means the default of 64.
	MaxSessions int
	// AdmitQueue bounds how many handshakes may wait for a session
	// slot when the server is full: slots freed by departing sessions
	// are granted strictly FIFO, smoothing bursty fleets instead of
	// bouncing them. Beyond the bound (or past AdmitWait) the
	// connection is rejected at handshake. 0 means the default of 16;
	// negative disables queueing (immediate rejection).
	AdmitQueue int
	// AdmitWait bounds how long one queued handshake waits before
	// being rejected — the backpressure valve that keeps a saturated
	// server from accumulating clients forever. 0 means the default
	// of 10s.
	AdmitWait time.Duration
	// MaxStmtWorkers caps any single statement's parallelism
	// regardless of session settings (admission control's second
	// knob). 0 means uncapped.
	MaxStmtWorkers int
	// WorkerBudget, if > 0, installs a global worker budget of that
	// many extra workers on the engine (see Engine.SetWorkerBudget).
	// 0 leaves the engine's current budget untouched.
	WorkerBudget int
	// WriteTimeout bounds each response frame write. A result stream
	// pins its MVCC snapshot (not an engine latch — writers proceed
	// regardless), so a client that stops draining its socket wastes a
	// session slot and the pinned versions' memory; past the deadline
	// the write fails, the statement's stream is released and the
	// connection is dropped. 0 means the default of 30s; negative
	// disables it.
	WriteTimeout time.Duration
	// Logf, if non-nil, receives server logs.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.AdmitQueue == 0 {
		c.AdmitQueue = 16
	}
	if c.AdmitWait <= 0 {
		c.AdmitWait = 10 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// DefaultWorkerBudget is the vxserve default: one extra worker per
// core beyond each statement's own goroutine.
func DefaultWorkerBudget() int { return runtime.NumCPU() }

// Server serves one engine to many network sessions.
type Server struct {
	eng *vertexica.Engine
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*session
	admitQ   []*admitWaiter // FIFO handshakes waiting for a session slot
	nextID   uint64
	draining bool

	drainCh chan struct{} // closed when Shutdown begins (wakes queued handshakes)

	stmtWg sync.WaitGroup // in-flight statements (drain barrier)
	connWg sync.WaitGroup // live connection handlers
}

// admitWaiter is one queued handshake. The grant channel is buffered
// so a granter never blocks on a waiter that just gave up; the waiter
// drains it after withdrawing to never lose a granted slot.
type admitWaiter struct {
	ss    *session
	grant chan uint64
}

// New returns a server over the engine.
func New(eng *vertexica.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.WorkerBudget > 0 {
		eng.SetWorkerBudget(cfg.WorkerBudget)
	}
	s := &Server{
		eng:      eng,
		cfg:      cfg,
		sessions: make(map[uint64]*session),
		drainCh:  make(chan struct{}),
	}
	// Server-level gauges in the engine registry, so SHOW STATS from
	// any session also reports connection pressure. Gauges are pulled
	// at snapshot time; re-registering (a second New over the same
	// engine, as tests do) just repoints them at the newest server.
	reg := eng.DB().Stats()
	reg.Gauge("server.sessions", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.sessions))
	})
	reg.Gauge("server.admit_queue_depth", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.admitQ))
	})
	return s
}

// Engine exposes the served engine (tests and vxserve preloading).
func (s *Server) Engine() *vertexica.Engine { return s.eng }

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ErrServerClosed is returned by Serve after a graceful Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Listen starts listening on addr (e.g. "127.0.0.1:5433" or ":0")
// without accepting yet; Addr reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Shutdown. Call Listen first.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.connWg.Add(1)
		go func() {
			defer s.connWg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// beginStmt registers an in-flight statement with the drain barrier;
// it fails once draining has started.
func (s *Server) beginStmt() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.stmtWg.Add(1)
	return true
}

func (s *Server) endStmt() { s.stmtWg.Done() }

// registerLocked installs a session under a fresh id. Callers hold
// s.mu.
func (s *Server) registerLocked(ss *session) uint64 {
	s.nextID++
	id := s.nextID
	s.sessions[id] = ss
	return id
}

// admit registers a new session, enforcing the session bound. When the
// server is full the handshake joins a bounded FIFO wait list instead
// of being rejected: a slot freed by a departing session goes to the
// oldest waiter. Waiters past the queue bound, past AdmitWait, or
// caught by a shutdown are rejected — queue, don't hoard.
func (s *Server) admit(ss *session) (uint64, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return 0, errors.New("server is shutting down")
	}
	if len(s.sessions) < s.cfg.MaxSessions {
		id := s.registerLocked(ss)
		s.mu.Unlock()
		return id, nil
	}
	if s.cfg.AdmitQueue < 0 || len(s.admitQ) >= s.cfg.AdmitQueue {
		s.mu.Unlock()
		return 0, fmt.Errorf("too many sessions (limit %d, admission queue full)", s.cfg.MaxSessions)
	}
	w := &admitWaiter{ss: ss, grant: make(chan uint64, 1)}
	s.admitQ = append(s.admitQ, w)
	waiting := len(s.admitQ)
	s.mu.Unlock()
	s.logf("admission: queued handshake (%d waiting)", waiting)

	timer := time.NewTimer(s.cfg.AdmitWait)
	defer timer.Stop()
	select {
	case id := <-w.grant:
		return id, nil
	case <-timer.C:
	case <-s.drainCh:
	}
	// Timed out or draining: withdraw from the queue. A grant may have
	// raced with the decision — the buffered channel keeps it, and a
	// granted slot is never thrown away.
	s.mu.Lock()
	for i, q := range s.admitQ {
		if q == w {
			s.admitQ = append(s.admitQ[:i], s.admitQ[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	select {
	case id := <-w.grant:
		return id, nil
	default:
	}
	if s.isDraining() {
		return 0, errors.New("server is shutting down")
	}
	return 0, fmt.Errorf("too many sessions (limit %d, queued %v without a free slot)",
		s.cfg.MaxSessions, s.cfg.AdmitWait)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// unadmit removes a departing session and hands its slot to the oldest
// queued handshake (FIFO grant).
func (s *Server) unadmit(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, id)
	for len(s.admitQ) > 0 && len(s.sessions) < s.cfg.MaxSessions && !s.draining {
		w := s.admitQ[0]
		s.admitQ = s.admitQ[1:]
		w.grant <- s.registerLocked(w.ss)
	}
}

// Shutdown drains the server: stop accepting, reject new statements,
// wait for in-flight statements to finish, then close every
// connection. If ctx expires first, in-flight statements are
// cancelled and connections closed immediately; Shutdown still waits
// for the handlers to unwind before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	wasDraining := s.draining
	s.draining = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()
	if !wasDraining {
		close(s.drainCh) // reject queued handshakes immediately
	}
	if ln != nil {
		ln.Close()
	}

	drained := make(chan struct{})
	go func() {
		s.stmtWg.Wait()
		close(drained)
	}()
	var errOut error
	select {
	case <-drained:
	case <-ctx.Done():
		errOut = ctx.Err()
		for _, ss := range sessions {
			ss.cancelInflight()
		}
	}
	for _, ss := range sessions {
		ss.conn.Close() // unblocks the reader; handler unwinds
	}
	s.connWg.Wait()
	<-drained
	s.logf("server: drained (%v)", errOut)
	return errOut
}
