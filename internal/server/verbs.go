package server

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	vertexica "repro"
	"repro/internal/storage"
	"repro/internal/wire"
)

// Graph-algorithm RPCs: the REPL's \pagerank-style commands become
// server-side verbs so a thin client can drive vertex-centric and SQL
// graph algorithms remotely. Every verb returns a result batch
// (sorted by vertex id where applicable), reusing the row-streaming
// path of ordinary queries.
//
// Graph runs mutate the graph's relational tables (reset, supersteps,
// iteration scratch tables); the facade methods they dispatch to take
// the engine's cross-session write gate for the whole run, so two
// sessions' runs serialize instead of corrupting each other. A verb
// is refused while this session holds an open transaction — the
// session owns the gate then, and the run would deadlock against
// itself (and bypass the transaction's undo scope anyway).
// Vertex-centric verbs also return the run's RunStats (supersteps,
// cache behavior, skipped partitions) as wire stats, which the session
// ships to the client in the Done frame's stats trailer instead of
// discarding them server-side.
func (ss *session) runGraphVerb(ctx context.Context, verb string, args []string) (*storage.Batch, []wire.Stat, error) {
	if ss.es.InTransaction() {
		return nil, nil, fmt.Errorf("server: cannot run graph verb %q inside a transaction", verb)
	}
	eng := ss.srv.eng
	// The session's per-statement worker cap applies to vertex-centric
	// runs via Options.Workers. (SQL-flavored verbs plan with the
	// engine default; their extra workers still come from the global
	// budget, so the process-wide bound holds regardless.)
	workers := ss.es.EffectiveWorkers()
	argN := func(i int, def int64) int64 {
		if i < len(args) {
			if v, err := strconv.ParseInt(args[i], 10, 64); err == nil {
				return v
			}
		}
		return def
	}
	switch verb {
	case "graphs":
		names := []string{}
		for _, n := range eng.DB().Catalog().Names() {
			const suf = "_vertex"
			if len(n) > len(suf) && n[len(n)-len(suf):] == suf {
				names = append(names, n[:len(n)-len(suf)])
			}
		}
		b := storage.NewBatch(storage.NewSchema(storage.Col("graph", storage.TypeString)))
		for _, n := range names {
			if err := b.AppendRow(storage.Str(n)); err != nil {
				return nil, nil, err
			}
		}
		return b, nil, nil

	case "load":
		if len(args) < 2 {
			return nil, nil, fmt.Errorf("server: load wants <twitter|gplus|livejournal> <scale>")
		}
		scale, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("server: load scale: %w", err)
		}
		var ds *vertexica.Dataset
		switch args[0] {
		case "twitter":
			ds = vertexica.TwitterScale(scale)
		case "gplus":
			ds = vertexica.GPlusScale(scale)
		case "livejournal":
			ds = vertexica.LiveJournalScale(scale)
		default:
			return nil, nil, fmt.Errorf("server: unknown dataset kind %q", args[0])
		}
		g, err := eng.LoadDatasetWithMetadata(ds, 42)
		if err != nil {
			return nil, nil, err
		}
		nv, _ := g.NumVertices()
		ne, _ := g.NumEdges()
		b := storage.NewBatch(storage.NewSchema(
			storage.Col("graph", storage.TypeString),
			storage.Col("vertices", storage.TypeInt64),
			storage.Col("edges", storage.TypeInt64),
		))
		if err := b.AppendRow(storage.Str(g.Name()), storage.Int64(nv), storage.Int64(ne)); err != nil {
			return nil, nil, err
		}
		return b, nil, nil

	case "pagerank", "pagerank-sql":
		g, err := openVerbGraph(eng, args)
		if err != nil {
			return nil, nil, err
		}
		iters := int(argN(1, 10))
		var ranks map[int64]float64
		var stats []wire.Stat
		if verb == "pagerank" {
			var rs *vertexica.RunStats
			ranks, rs, err = g.PageRank(ctx, iters, vertexica.Options{Workers: workers})
			stats = runStatsWire(rs)
		} else {
			ranks, err = g.PageRankSQL(ctx, iters)
		}
		if err != nil {
			return nil, nil, err
		}
		b, err := floatMapBatch("rank", ranks)
		return b, stats, err

	case "sssp", "sssp-sql":
		g, err := openVerbGraph(eng, args)
		if err != nil {
			return nil, nil, err
		}
		source := argN(1, 0)
		unit := argN(2, 0) != 0
		var dists map[int64]float64
		var stats []wire.Stat
		if verb == "sssp" {
			var rs *vertexica.RunStats
			dists, rs, err = g.ShortestPaths(ctx, source, unit, vertexica.Options{Workers: workers})
			stats = runStatsWire(rs)
		} else {
			dists, err = g.ShortestPathsSQL(ctx, source, unit)
		}
		if err != nil {
			return nil, nil, err
		}
		b, err := floatMapBatch("dist", dists)
		return b, stats, err

	case "components", "components-sql":
		g, err := openVerbGraph(eng, args)
		if err != nil {
			return nil, nil, err
		}
		var labels map[int64]int64
		var stats []wire.Stat
		if verb == "components" {
			var rs *vertexica.RunStats
			labels, rs, err = g.ConnectedComponents(ctx, vertexica.Options{Workers: workers})
			stats = runStatsWire(rs)
		} else {
			labels, err = g.ConnectedComponentsSQL(ctx)
		}
		if err != nil {
			return nil, nil, err
		}
		b, err := intMapBatch("component", labels)
		return b, stats, err

	case "triangles":
		g, err := openVerbGraph(eng, args)
		if err != nil {
			return nil, nil, err
		}
		n, err := g.TriangleCount()
		if err != nil {
			return nil, nil, err
		}
		b := storage.NewBatch(storage.NewSchema(storage.Col("triangles", storage.TypeInt64)))
		if err := b.AppendRow(storage.Int64(n)); err != nil {
			return nil, nil, err
		}
		return b, nil, nil
	}
	return nil, nil, fmt.Errorf("server: unknown graph verb %q", verb)
}

// runStatsWire flattens a vertex-centric run's RunStats into the named
// int64 stats the Done-frame trailer carries.
func runStatsWire(rs *vertexica.RunStats) []wire.Stat {
	if rs == nil {
		return nil
	}
	return []wire.Stat{
		{Name: "supersteps", Value: int64(rs.Supersteps)},
		{Name: "total_computed", Value: rs.TotalComputed},
		{Name: "total_messages", Value: rs.TotalMessages},
		{Name: "dangling_messages", Value: rs.DanglingMessages},
		{Name: "cache_builds", Value: int64(rs.CacheBuilds)},
		{Name: "cache_hits", Value: int64(rs.CacheHits)},
		{Name: "skipped_partitions", Value: rs.SkippedParts},
		{Name: "skipped_vertices", Value: rs.SkippedVerts},
		{Name: "duration_us", Value: rs.Duration.Microseconds()},
	}
}

func openVerbGraph(eng *vertexica.Engine, args []string) (*vertexica.Graph, error) {
	if len(args) < 1 || args[0] == "" {
		return nil, fmt.Errorf("server: graph verb wants a graph name")
	}
	return eng.OpenGraph(args[0])
}

// floatMapBatch materializes an id→float map sorted by id.
func floatMapBatch(col string, m map[int64]float64) (*storage.Batch, error) {
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b := storage.NewBatch(storage.NewSchema(
		storage.Col("id", storage.TypeInt64),
		storage.Col(col, storage.TypeFloat64),
	))
	for _, id := range ids {
		if err := b.AppendRow(storage.Int64(id), storage.Float64(m[id])); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// intMapBatch materializes an id→int map sorted by id.
func intMapBatch(col string, m map[int64]int64) (*storage.Batch, error) {
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b := storage.NewBatch(storage.NewSchema(
		storage.Col("id", storage.TypeInt64),
		storage.Col(col, storage.TypeInt64),
	))
	for _, id := range ids {
		if err := b.AppendRow(storage.Int64(id), storage.Int64(m[id])); err != nil {
			return nil, err
		}
	}
	return b, nil
}
