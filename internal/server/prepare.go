package server

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// Prepared/parameterized statements. The engine's planner has no
// placeholder nodes, so the server binds parameters the way simple
// drivers do: the prepared text carries $1..$n references and
// BindExec substitutes SQL literals — with full quoting — before the
// statement enters the normal parse/plan/execute path. Substitution
// is quote-aware: a $n inside a string literal is data, not a
// parameter.

// SubstituteParams renders args into the $1..$n references of text.
func SubstituteParams(text string, args []storage.Value) (string, error) {
	var b strings.Builder
	b.Grow(len(text) + 16*len(args))
	inStr := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		if inStr {
			b.WriteByte(c)
			if c == '\'' {
				inStr = false // '' escapes re-enter on the next quote
			}
			continue
		}
		switch {
		case c == '\'':
			inStr = true
			b.WriteByte(c)
		case c == '$' && i+1 < len(text) && text[i+1] >= '0' && text[i+1] <= '9':
			j := i + 1
			for j < len(text) && text[j] >= '0' && text[j] <= '9' {
				j++
			}
			n, err := strconv.Atoi(text[i+1 : j])
			if err != nil || n < 1 || n > len(args) {
				return "", fmt.Errorf("server: parameter $%s out of range (%d arguments bound)", text[i+1:j], len(args))
			}
			lit, err := renderLiteral(args[n-1])
			if err != nil {
				return "", fmt.Errorf("server: parameter $%d: %w", n, err)
			}
			b.WriteString(lit)
			i = j - 1
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), nil
}

// renderLiteral formats a value as a SQL literal that parses back to
// exactly the same value.
func renderLiteral(v storage.Value) (string, error) {
	if v.Null {
		return "NULL", nil
	}
	switch v.Type {
	case storage.TypeInt64:
		return strconv.FormatInt(v.I, 10), nil
	case storage.TypeFloat64:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return "", fmt.Errorf("%v has no SQL literal", v.F)
		}
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		// The lexer reads numbers only with a leading digit; a bare
		// negative or exponent form is fine, but ensure a decimal
		// representation the parser accepts: -1e-07, 2.5, 3 all lex.
		return s, nil
	case storage.TypeString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'", nil
	case storage.TypeBool:
		if v.I != 0 {
			return "TRUE", nil
		}
		return "FALSE", nil
	}
	return "", fmt.Errorf("unsupported parameter type %v", v.Type)
}
