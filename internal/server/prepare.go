package server

import (
	"repro/internal/sql"
	"repro/internal/storage"
)

// Legacy parameter binding. The primary prepared path ships raw args
// into the engine and binds real Param nodes (engine.Session.
// RunStreamBound); textual substitution survives only as the fallback
// for sessions that opt out of bind-and-run (legacySubstitution) and
// as the re-parse baseline in the prepare benchmark. The actual
// quote-aware substitution lives in internal/sql so the engine's WAL
// rendering shares one implementation.

// SubstituteParams renders args into the $1..$n references of text.
func SubstituteParams(text string, args []storage.Value) (string, error) {
	return sql.SubstituteParams(text, args)
}

// legacySubstitution switches the prepared-execution path back to
// textual substitution plus a full re-parse per execution. It exists
// for ablation (the prepare benchmark measures both paths) and as an
// escape hatch; bind-and-run is the default.
var legacySubstitution = false
