package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	vertexica "repro"
	"repro/internal/client"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/testutil"
	"repro/internal/wire"
)

// startServer boots a server over eng on an ephemeral port and
// arranges a graceful shutdown at test end.
func startServer(t *testing.T, eng *vertexica.Engine, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(eng, cfg)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveDone; err != nil && !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, srv.Addr()
}

func dialT(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerBasicSQL(t *testing.T) {
	eng := vertexica.New()
	_, addr := startServer(t, eng, Config{})
	c := dialT(t, addr)
	ctx := context.Background()

	if _, err := c.Exec(ctx, "CREATE TABLE kv (k INTEGER, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	n, err := c.Exec(ctx, "INSERT INTO kv VALUES (1, 'one'), (2, 'two''s'), (3, NULL)")
	if err != nil || n != 3 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	rows, err := c.Query(ctx, "SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 || rows.Columns()[1] != "v" {
		t.Fatalf("rows: %d cols=%v", rows.Len(), rows.Columns())
	}
	if got := rows.Value(1, 1).S; got != "two's" {
		t.Fatalf("quoted string round trip: %q", got)
	}
	if !rows.Value(2, 1).Null {
		t.Fatal("NULL lost over the wire")
	}

	// Wire results must be byte-identical to the in-process result.
	local, err := eng.DB().Query("SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	localData, err := local.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !wire.EqualBatches(rows.Data, localData) {
		t.Fatal("wire result differs from in-process result")
	}

	// Parse errors surface as server errors without killing the session.
	if _, err := c.Query(ctx, "SELEKT 1"); err == nil {
		t.Fatal("expected parse error")
	}
	if rows, err := c.Query(ctx, "SELECT COUNT(*) FROM kv"); err != nil || rows.Value(0, 0).I != 3 {
		t.Fatalf("session unusable after error: %v", err)
	}
}

func TestServerPreparedStatements(t *testing.T) {
	eng := vertexica.New()
	_, addr := startServer(t, eng, Config{})
	c := dialT(t, addr)
	ctx := context.Background()

	if _, err := c.Exec(ctx, "CREATE TABLE p (id INTEGER, score DOUBLE, name VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	ins, err := c.Prepare(ctx, "INSERT INTO p VALUES ($1, $2, $3)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("n-%d; DROP TABLE p; --'", i)
		if _, err := ins.Exec(ctx, storage.Int64(int64(i)), storage.Float64(float64(i)/3), storage.Str(name)); err != nil {
			t.Fatalf("bind exec %d: %v", i, err)
		}
	}
	sel, err := c.Prepare(ctx, "SELECT name FROM p WHERE id = $1")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sel.Query(ctx, storage.Int64(3))
	if err != nil || rows.Len() != 1 {
		t.Fatalf("prepared select: %v (%d rows)", err, rows.Len())
	}
	if got := rows.Value(0, 0).S; got != "n-3; DROP TABLE p; --'" {
		t.Fatalf("injection-shaped string mangled: %q", got)
	}
	// NULL parameter.
	if _, err := ins.Exec(ctx, storage.Int64(9), storage.Null(storage.TypeFloat64), storage.Str("x")); err != nil {
		t.Fatal(err)
	}
	rows, err = c.Query(ctx, "SELECT COUNT(*) FROM p WHERE score IS NULL")
	if err != nil || rows.Value(0, 0).I != 1 {
		t.Fatalf("NULL param: %v", err)
	}
	// Out-of-range parameter is an error, not silent text.
	if _, err := ins.Exec(ctx, storage.Int64(1)); err == nil {
		t.Fatal("missing arguments accepted")
	}
}

func TestSubstituteParams(t *testing.T) {
	args := []storage.Value{storage.Int64(7), storage.Str("it's"), storage.Float64(1e-7), storage.Bool(true)}
	got, err := SubstituteParams("SELECT $1, $2, $3, $4, '$1 stays'", args)
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT 7, 'it''s', 1e-07, TRUE, '$1 stays'"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	if _, err := SubstituteParams("SELECT $5", args); err == nil {
		t.Fatal("out-of-range parameter accepted")
	}
	if _, err := SubstituteParams("SELECT $1", nil); err == nil {
		t.Fatal("no-args parameter accepted")
	}
}

func TestServerSessionVariables(t *testing.T) {
	eng := vertexica.New()
	if err := eng.RegisterUDF(&vertexica.ScalarFunc{
		Name: "slowv", MinArgs: 1, MaxArgs: 1,
		ReturnType: func(args []storage.Type) (storage.Type, error) { return storage.TypeInt64, nil },
		Eval: func(args []storage.Value) (storage.Value, error) {
			time.Sleep(20 * time.Millisecond)
			return args[0], nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, eng, Config{MaxStmtWorkers: 2})
	c := dialT(t, addr)
	ctx := context.Background()

	if _, err := c.Exec(ctx, "CREATE TABLE s (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Exec(ctx, fmt.Sprintf("INSERT INTO s VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	// statement_timeout over the wire.
	if _, err := c.Exec(ctx, "SET statement_timeout = 30"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "SELECT slowv(x) FROM s"); err == nil {
		t.Fatal("statement_timeout did not fire over the wire")
	}
	if _, err := c.Exec(ctx, "SET statement_timeout = 0"); err != nil {
		t.Fatal(err)
	}
	if rows, err := c.Query(ctx, "SELECT slowv(x) FROM s LIMIT 1"); err != nil || rows.Len() != 1 {
		t.Fatalf("after disabling timeout: %v", err)
	}
	// SHOW reflects the admission cap on parallelism.
	rows, err := c.Query(ctx, "SHOW parallelism")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Value(0, 0).I; got > 2 {
		t.Fatalf("parallelism %d exceeds MaxStmtWorkers 2", got)
	}
}

func TestServerAdmissionControl(t *testing.T) {
	eng := vertexica.New()
	// AdmitQueue < 0 restores unqueued admission: the (N+1)th
	// handshake is rejected immediately.
	_, addr := startServer(t, eng, Config{MaxSessions: 2, AdmitQueue: -1})
	c1 := dialT(t, addr)
	c2 := dialT(t, addr)
	_ = c2
	if _, err := client.Dial(addr); err == nil ||
		!strings.Contains(err.Error(), "too many sessions") {
		t.Fatalf("third session admitted: %v", err)
	}
	c1.Close()
	// Slot frees once the session unwinds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c4, err := client.Dial(addr)
		if err == nil {
			c4.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerGraphVerbs(t *testing.T) {
	eng := vertexica.New()
	ref := testutil.RandomGraph(7, 120, 600)
	if _, err := ref.Load(eng.DB(), "g"); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, eng, Config{})
	c := dialT(t, addr)
	ctx := context.Background()

	// Server-side PageRank must agree with the in-process run and the
	// independent reference.
	got, err := c.PageRank(ctx, "g", 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := eng.OpenGraph("g")
	if err != nil {
		t.Fatal(err)
	}
	local, _, err := g.PageRank(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := testutil.DiffFloatMaps("pagerank wire vs local", got, local, 0); err != nil {
		t.Fatal(err)
	}
	if err := testutil.DiffFloatMaps("pagerank wire vs reference",
		got, testutil.RefPageRank(ref, 8, 0.85), 1e-9); err != nil {
		t.Fatal(err)
	}

	// SSSP and components (SQL flavors included) round-trip.
	if _, err := c.Graph(ctx, "sssp", "g", "0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Graph(ctx, "components-sql", "g"); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Graph(ctx, "graphs")
	if err != nil || rows.Len() != 1 || rows.Value(0, 0).S != "g" {
		t.Fatalf("graphs verb: %v", err)
	}
	// load verb creates a queryable graph.
	rows, err = c.Graph(ctx, "load", "twitter", "0.002")
	if err != nil || rows.Len() != 1 {
		t.Fatalf("load verb: %v", err)
	}
	name := rows.Value(0, 0).S
	if rows, err = c.Query(ctx, fmt.Sprintf("SELECT COUNT(*) FROM %s_edge", name)); err != nil || rows.Value(0, 0).I == 0 {
		t.Fatalf("loaded graph not queryable: %v", err)
	}
	// Verbs are refused inside a transaction (they bypass undo).
	if _, err := c.Exec(ctx, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Graph(ctx, "pagerank", "g", "2"); err == nil {
		t.Fatal("graph verb allowed inside a transaction")
	}
	if _, err := c.Exec(ctx, "ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Graph(ctx, "no-such-verb"); err == nil {
		t.Fatal("unknown verb accepted")
	}
}

// TestServerCancelFreesBudget cancels a statement mid-flight and
// asserts its worker-budget slots return to the pool and the session
// survives.
func TestServerCancelFreesBudget(t *testing.T) {
	oldMorsels := exec.MinMorselRows
	exec.MinMorselRows = 16
	defer func() { exec.MinMorselRows = oldMorsels }()

	eng := vertexica.New()
	eng.SetParallelism(4)
	if err := eng.RegisterUDF(&expr.ScalarFunc{
		Name: "slowc", MinArgs: 1, MaxArgs: 1,
		ReturnType: func(args []storage.Type) (storage.Type, error) { return storage.TypeInt64, nil },
		Eval: func(args []storage.Value) (storage.Value, error) {
			time.Sleep(2 * time.Millisecond)
			return args[0], nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, eng, Config{WorkerBudget: 3})
	c := dialT(t, addr)
	ctx := context.Background()

	if _, err := c.Exec(ctx, "CREATE TABLE big (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO big VALUES (0)")
	for i := 1; i < 400; i++ {
		fmt.Fprintf(&sb, ", (%d)", i)
	}
	if _, err := c.Exec(ctx, sb.String()); err != nil {
		t.Fatal(err)
	}

	cctx, cancel := context.WithTimeout(ctx, 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(cctx, "SELECT slowc(x) FROM big")
	if err == nil {
		t.Fatal("cancelled statement succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancel took %v; did not land mid-statement", elapsed)
	}
	// The cancelled statement's budget slots must drain back.
	budget := eng.WorkerBudget()
	deadline := time.Now().Add(5 * time.Second)
	for budget.InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("budget slots leaked: in-use %d", budget.InUse())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Session remains usable.
	if rows, err := c.Query(ctx, "SELECT COUNT(*) FROM big"); err != nil || rows.Value(0, 0).I != 400 {
		t.Fatalf("session dead after cancel: %v", err)
	}
}

// TestServerGracefulDrain lets an in-flight statement finish, then
// refuses new work and closes connections.
func TestServerGracefulDrain(t *testing.T) {
	eng := vertexica.New()
	if err := eng.RegisterUDF(&expr.ScalarFunc{
		Name: "slowd", MinArgs: 1, MaxArgs: 1,
		ReturnType: func(args []storage.Type) (storage.Type, error) { return storage.TypeInt64, nil },
		Eval: func(args []storage.Value) (storage.Value, error) {
			time.Sleep(10 * time.Millisecond)
			return args[0], nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Exec(ctx, "CREATE TABLE d (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Exec(ctx, fmt.Sprintf("INSERT INTO d VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}

	type qres struct {
		rows *client.Rows
		err  error
	}
	resCh := make(chan qres, 1)
	go func() {
		rows, err := c.Query(ctx, "SELECT slowd(x) FROM d")
		resCh <- qres{rows, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the statement get in flight

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	res := <-resCh
	if res.err != nil || res.rows.Len() != 10 {
		t.Fatalf("in-flight statement not drained cleanly: %v", res.err)
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
	if _, err := client.Dial(srv.Addr()); err == nil {
		t.Fatal("connect after shutdown succeeded")
	}
}

// TestServerConcurrentSessions is the acceptance test: many concurrent
// client sessions — mixed SQL reads, a write transaction, vertex-
// centric PageRank runs, and a mid-statement cancel — against one
// engine under a small worker budget. Every result must be byte-
// identical to serial in-process execution, the budget's high-water
// mark must never exceed its capacity, and the cancelled statement's
// slots must drain back. Run under -race in CI.
func TestServerConcurrentSessions(t *testing.T) {
	oldMorsels := exec.MinMorselRows
	exec.MinMorselRows = 16
	defer func() { exec.MinMorselRows = oldMorsels }()

	const budgetCap = 3
	eng := vertexica.New()
	eng.SetParallelism(4) // parallel plans even on the 1-CPU CI box
	if err := eng.RegisterUDF(&expr.ScalarFunc{
		Name: "slows", MinArgs: 1, MaxArgs: 1,
		ReturnType: func(args []storage.Type) (storage.Type, error) { return storage.TypeInt64, nil },
		Eval: func(args []storage.Value) (storage.Value, error) {
			time.Sleep(time.Millisecond)
			return args[0], nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	ref := testutil.RandomGraph(11, 150, 900)
	if _, err := ref.Load(eng.DB(), "g"); err != nil {
		t.Fatal(err)
	}
	g, err := eng.OpenGraph("g")
	if err != nil {
		t.Fatal(err)
	}

	// Serial in-process baselines, computed before any concurrency.
	readQueries := []string{
		"SELECT src, dst, weight FROM g_edge ORDER BY src, dst, created",
		"SELECT src, COUNT(*), SUM(weight) FROM g_edge GROUP BY src ORDER BY src",
		"SELECT e1.src, COUNT(*) FROM g_edge AS e1 JOIN g_edge AS e2 ON e1.dst = e2.src GROUP BY e1.src ORDER BY e1.src",
		"SELECT COUNT(*) FROM g_edge WHERE weight > 1.0",
	}
	wantRead := make([]*storage.Batch, len(readQueries))
	for i, q := range readQueries {
		rows, err := eng.DB().Query(q)
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
		wantRead[i], err = rows.Materialize()
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
	}
	wantRanks, _, err := g.PageRank(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}

	budget := eng.WorkerBudget()
	budget.ResetHighWater()
	_, addr := startServer(t, eng, Config{WorkerBudget: budgetCap, MaxSessions: 16, MaxStmtWorkers: 4})

	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	fail := func(format string, args ...interface{}) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}

	// 6 reader sessions: repeated mixed reads, byte-compared.
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				fail("reader %d dial: %v", r, err)
				return
			}
			defer c.Close()
			for round := 0; round < 5; round++ {
				qi := (r + round) % len(readQueries)
				rows, err := c.Query(ctx, readQueries[qi])
				if err != nil {
					fail("reader %d query %d: %v", r, qi, err)
					return
				}
				if !wire.EqualBatches(rows.Data, wantRead[qi]) {
					fail("reader %d query %d: result differs from serial baseline", r, qi)
					return
				}
			}
		}(r)
	}

	// 1 write-transaction session on its own table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := client.Dial(addr)
		if err != nil {
			fail("writer dial: %v", err)
			return
		}
		defer c.Close()
		steps := []string{
			"CREATE TABLE w (x INTEGER)",
			"BEGIN",
			"INSERT INTO w VALUES (1), (2), (3)",
			"ROLLBACK",
			"BEGIN",
			"INSERT INTO w VALUES (10), (20)",
			"COMMIT",
		}
		for _, st := range steps {
			if _, err := c.Exec(ctx, st); err != nil {
				fail("writer %q: %v", st, err)
				return
			}
		}
		rows, err := c.Query(ctx, "SELECT x FROM w ORDER BY x")
		if err != nil || rows.Len() != 2 || rows.Value(0, 0).I != 10 || rows.Value(1, 0).I != 20 {
			fail("writer final state wrong: %v (%d rows)", err, rows.Len())
		}
	}()

	// 2 vertex-centric PageRank sessions (they serialize on the gate).
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				fail("pagerank %d dial: %v", p, err)
				return
			}
			defer c.Close()
			ranks, err := c.PageRank(ctx, "g", 6)
			if err != nil {
				fail("pagerank %d: %v", p, err)
				return
			}
			if err := testutil.DiffFloatMaps(fmt.Sprintf("pagerank session %d", p), ranks, wantRanks, 0); err != nil {
				fail("%v", err)
			}
		}(p)
	}

	// 1 cancel session: slow statement aborted mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := client.Dial(addr)
		if err != nil {
			fail("canceller dial: %v", err)
			return
		}
		defer c.Close()
		cctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
		defer cancel()
		if _, err := c.Query(cctx, "SELECT slows(created) FROM g_edge"); err == nil {
			fail("cancelled statement succeeded")
			return
		}
		// The session must still work after the cancel.
		if rows, err := c.Query(ctx, "SELECT COUNT(*) FROM g_edge"); err != nil || rows.Value(0, 0).I != int64(len(ref.Edges)) {
			fail("canceller session dead: %v", err)
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	if hw := budget.HighWater(); hw > budgetCap {
		t.Errorf("worker budget overshot: high water %d > capacity %d", hw, budgetCap)
	} else if hw == 0 {
		t.Error("worker budget never used; test exercised nothing")
	}
	deadline := time.Now().Add(5 * time.Second)
	for budget.InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("budget slots leaked after all sessions finished: %d", budget.InUse())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGraphVerbHonorsSessionKnobs: SET statement_timeout must govern
// graph verbs too, and the admission worker cap must reach
// vertex-centric runs.
func TestGraphVerbHonorsSessionKnobs(t *testing.T) {
	eng := vertexica.New()
	ref := testutil.RandomGraph(31, 400, 4000)
	if _, err := ref.Load(eng.DB(), "g"); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, eng, Config{MaxStmtWorkers: 1})
	c := dialT(t, addr)
	ctx := context.Background()

	if _, err := c.Exec(ctx, "SET statement_timeout = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Graph(ctx, "pagerank", "g", "400"); err == nil {
		t.Fatal("statement_timeout did not cancel a graph verb")
	}
	if _, err := c.Exec(ctx, "SET statement_timeout = 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Graph(ctx, "pagerank", "g", "3"); err != nil {
		t.Fatalf("graph verb after disabling timeout: %v", err)
	}
}

// TestServerGraphVerbStatsTrailer asserts that vertex-centric verbs
// ship their RunStats in the Done frame's stats trailer and that
// SQL-flavored verbs (which have no Pregel run) ship none.
func TestServerGraphVerbStatsTrailer(t *testing.T) {
	eng := vertexica.New()
	ref := testutil.RandomGraph(7, 120, 600)
	if _, err := ref.Load(eng.DB(), "g"); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, eng, Config{})
	c := dialT(t, addr)
	ctx := context.Background()

	rows, err := c.Graph(ctx, "pagerank", "g", "3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Materialize(); err != nil {
		t.Fatal(err)
	}
	stats := map[string]int64{}
	for _, s := range rows.Stats {
		stats[s.Name] = s.Value
	}
	if stats["supersteps"] < 3 {
		t.Fatalf("supersteps=%d, want >=3 (stats: %v)", stats["supersteps"], rows.Stats)
	}
	if stats["total_computed"] == 0 {
		t.Fatalf("total_computed missing (stats: %v)", rows.Stats)
	}
	if _, ok := stats["duration_us"]; !ok {
		t.Fatalf("duration_us missing (stats: %v)", rows.Stats)
	}

	// SQL-flavored verbs compute via joins, not supersteps: no trailer.
	rows, err = c.Graph(ctx, "components-sql", "g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Materialize(); err != nil {
		t.Fatal(err)
	}
	if rows.Stats != nil {
		t.Fatalf("components-sql shipped a stats trailer: %v", rows.Stats)
	}
}

// TestServerShowStats runs SHOW STATS over the wire and checks that
// the server's own gauges are visible alongside the engine counters.
func TestServerShowStats(t *testing.T) {
	eng := vertexica.New()
	_, addr := startServer(t, eng, Config{})
	c := dialT(t, addr)
	ctx := context.Background()

	if _, err := c.Exec(ctx, "CREATE TABLE s (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "SELECT COUNT(*) FROM s"); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(ctx, "SHOW STATS")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for i := 0; i < rows.Len(); i++ {
		got[rows.Value(i, 0).S] = rows.Value(i, 1).I
	}
	if got["server.sessions"] < 1 {
		t.Fatalf("server.sessions=%d, want >=1 (our own connection)", got["server.sessions"])
	}
	if _, ok := got["server.admit_queue_depth"]; !ok {
		t.Fatal("server.admit_queue_depth gauge missing")
	}
	if got["engine.statements.select"] < 1 {
		t.Fatalf("engine.statements.select=%d, want >=1", got["engine.statements.select"])
	}
}
