package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/wire"
)

// maxStmtArgs bounds the argument count of one BindExec or Graph
// frame: the reader pre-allocates an args slice from the client-
// supplied count, so the count must be capped before allocation.
const maxStmtArgs = 1 << 10

// stmtKind discriminates queued statement requests.
type stmtKind uint8

const (
	stmtSQL stmtKind = iota
	stmtBindExec
	stmtGraph
)

// stmtReq is one statement handed from the reader to the executor.
type stmtReq struct {
	kind stmtKind
	id   uint32
	enq  time.Time       // when the reader enqueued it (admission-queue wait)
	sql  string          // stmtSQL
	prep uint32          // stmtBindExec
	args []storage.Value // stmtBindExec
	verb string          // stmtGraph
	argv []string        // stmtGraph
}

// session is one client connection's server-side state.
type session struct {
	id   uint64
	srv  *Server
	conn net.Conn
	br   *bufio.Reader
	es   *engine.Session

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	reqs chan stmtReq

	prepMu   sync.Mutex
	prepared map[uint32]string

	inflightMu  sync.Mutex
	inflightID  uint32
	cancel      context.CancelFunc
	lastStarted uint32          // highest statement id that has begun executing
	cancelled   map[uint32]bool // cancels that arrived before their statement started
}

// handle runs one connection to completion.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	ss := &session{
		srv:       s,
		conn:      conn,
		br:        bufio.NewReader(conn),
		bw:        bufio.NewWriter(conn),
		reqs:      make(chan stmtReq, 8),
		prepared:  make(map[uint32]string),
		cancelled: make(map[uint32]bool),
	}

	// Handshake.
	typ, payload, err := wire.ReadFrame(ss.br)
	if err != nil || typ != wire.FrameHello {
		return
	}
	r := &wire.Reader{B: payload}
	version := r.Uvarint()
	clientName := r.String()
	if r.Err != nil || version != wire.ProtocolVersion {
		ss.writeError(0, fmt.Sprintf("unsupported protocol version %d (server speaks %d)", version, wire.ProtocolVersion))
		return
	}
	id, err := s.admit(ss)
	if err != nil {
		ss.writeError(0, err.Error())
		return
	}
	ss.id = id
	defer s.unadmit(id)
	ss.es = s.eng.DB().NewSessionMaxWorkers(s.cfg.MaxStmtWorkers)
	defer ss.es.Close() // rolls back an abandoned transaction

	var hello wire.Buffer
	hello.PutUvarint(id)
	hello.PutString(fmt.Sprintf("vertexica (budget=%d, max_sessions=%d)",
		s.eng.WorkerBudget().Capacity(), s.cfg.MaxSessions))
	if err := ss.writeFrame(wire.FrameHelloOK, hello.B); err != nil {
		return
	}
	s.logf("session %d: connected (%s)", id, clientName)

	// Executor goroutine: statements run serially per session.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for req := range ss.reqs {
			ss.runStmt(req)
		}
	}()
	ss.readLoop()
	close(ss.reqs)
	wg.Wait()
	s.logf("session %d: disconnected", id)
}

// readLoop parses client frames until EOF/error. Cancel frames are
// handled inline (they must overtake queued statements); everything
// else is enqueued for the executor.
func (ss *session) readLoop() {
	for {
		typ, payload, err := wire.ReadFrame(ss.br)
		if err != nil {
			return
		}
		r := &wire.Reader{B: payload}
		switch typ {
		case wire.FrameQuery:
			id := r.U32()
			sqlText := r.String()
			if r.Err != nil {
				return
			}
			ss.enqueue(stmtReq{kind: stmtSQL, id: id, sql: sqlText})
		case wire.FramePrepare:
			prep := r.U32()
			sqlText := r.String()
			if r.Err != nil {
				return
			}
			ss.prepMu.Lock()
			ss.prepared[prep] = sqlText
			ss.prepMu.Unlock()
			var b wire.Buffer
			b.PutU32(prep)
			ss.writeFrame(wire.FramePrepareOK, b.B)
		case wire.FrameBindExec:
			id := r.U32()
			prep := r.U32()
			nargs := r.Uvarint()
			// Every encoded value takes >= 2 bytes, and no sane
			// statement binds thousands of parameters: both bounds
			// guard the pre-allocation against a hostile count (a
			// 64 MiB payload must not demand a multi-GB slice).
			if r.Err != nil || nargs > uint64(len(r.B))/2 || nargs > maxStmtArgs {
				ss.writeError(id, "malformed bind: too many arguments")
				continue
			}
			args := make([]storage.Value, nargs)
			for i := range args {
				args[i] = r.Value()
			}
			if r.Err != nil {
				return
			}
			ss.enqueue(stmtReq{kind: stmtBindExec, id: id, prep: prep, args: args})
		case wire.FrameGraph:
			id := r.U32()
			verb := r.String()
			nargs := r.Uvarint()
			if r.Err != nil || nargs > uint64(len(r.B)) || nargs > maxStmtArgs {
				ss.writeError(id, "malformed graph verb: too many arguments")
				continue
			}
			argv := make([]string, nargs)
			for i := range argv {
				argv[i] = r.String()
			}
			if r.Err != nil {
				return
			}
			ss.enqueue(stmtReq{kind: stmtGraph, id: id, verb: verb, argv: argv})
		case wire.FrameCancel:
			ss.cancelStmt(r.U32())
		case wire.FrameGoodbye:
			return
		default:
			return // protocol violation: drop the connection
		}
	}
}

// enqueue hands a statement to the executor, rejecting instead of
// blocking when the client has over-pipelined.
func (ss *session) enqueue(req stmtReq) {
	req.enq = time.Now()
	select {
	case ss.reqs <- req:
	default:
		ss.writeError(req.id, "statement queue full (pipeline depth exceeded)")
	}
}

// setInflight installs the current statement's cancel hook. If a
// cancel frame for this statement already arrived (cancel can overtake
// the executor picking the statement off the queue), it fires
// immediately — cancellation is sticky, never lost to that race.
func (ss *session) setInflight(id uint32, cancel context.CancelFunc) {
	ss.inflightMu.Lock()
	ss.inflightID = id
	ss.cancel = cancel
	if cancel != nil {
		if id > ss.lastStarted {
			ss.lastStarted = id
		}
		if ss.cancelled[id] {
			delete(ss.cancelled, id)
			cancel()
		}
	}
	ss.inflightMu.Unlock()
}

func (ss *session) clearInflight() { ss.setInflight(0, nil) }

// cancelStmt cancels the statement with the given id: immediately if
// it is in flight, or by marking it so it dies at start if it is still
// queued. A cancel for a statement that already started AND finished
// (the client's deadline losing the race with completion — the common
// case for deadline-bounded queries) is dropped, keeping the pending
// set bounded by the statement queue depth.
func (ss *session) cancelStmt(id uint32) {
	ss.inflightMu.Lock()
	defer ss.inflightMu.Unlock()
	if ss.cancel != nil && ss.inflightID == id {
		ss.cancel()
		return
	}
	if id <= ss.lastStarted {
		return // already completed; nothing to cancel
	}
	ss.cancelled[id] = true
}

// cancelInflight force-cancels whatever runs now (forced shutdown).
func (ss *session) cancelInflight() {
	ss.inflightMu.Lock()
	defer ss.inflightMu.Unlock()
	if ss.cancel != nil {
		ss.cancel()
	}
}

// runStmt executes one statement and streams its response frames.
func (ss *session) runStmt(req stmtReq) {
	if !ss.srv.beginStmt() {
		ss.writeError(req.id, "server is shutting down")
		return
	}
	defer ss.srv.endStmt()

	ctx, cancel := context.WithCancel(context.Background())
	ss.setInflight(req.id, cancel)
	defer func() {
		ss.clearInflight()
		cancel()
	}()

	// The time between the reader enqueueing the statement and the
	// executor picking it up is admission-queue wait (the session runs
	// statements serially; a pipelined statement waits for its
	// predecessors). The engine folds it into the statement's trace as
	// the leading "admission" span.
	if !req.enq.IsZero() {
		ss.es.NoteQueueWait(time.Since(req.enq))
	}

	switch req.kind {
	case stmtSQL:
		ss.runSQL(ctx, req.id, req.sql)
	case stmtBindExec:
		ss.prepMu.Lock()
		text, ok := ss.prepared[req.prep]
		ss.prepMu.Unlock()
		if !ok {
			ss.writeError(req.id, fmt.Sprintf("unknown prepared statement %d", req.prep))
			return
		}
		if legacySubstitution {
			bound, err := SubstituteParams(text, req.args)
			if err != nil {
				ss.writeError(req.id, err.Error())
				return
			}
			ss.runSQL(ctx, req.id, bound)
			return
		}
		ss.runBound(ctx, req.id, text, req.args)
	case stmtGraph:
		// Graph verbs honor the session's statement_timeout like any
		// SQL statement (the parallelism cap is applied inside the
		// verb via EffectiveWorkers).
		gctx, gcancel := ss.es.StatementContext(ctx)
		batch, stats, err := ss.runGraphVerb(gctx, req.verb, req.argv)
		gcancel()
		if err != nil {
			ss.writeError(req.id, err.Error())
			return
		}
		ss.writeRowsStats(req.id, engine.MaterializedRows(batch), stats)
	}
}

// runSQL executes one SQL statement through the engine session and
// writes its result frames. SELECT results stream: the executor
// produces batches while earlier ones are already on the wire.
func (ss *session) runSQL(ctx context.Context, id uint32, text string) {
	start := time.Now()
	rows, res, err := ss.es.RunStream(ctx, text)
	ss.writeResult(id, rows, res, err, start)
}

// runBound executes a prepared statement bind-and-run: the raw
// argument values reach the engine, which binds them onto a cached
// parameterized plan — no substitution, no re-parse on the hot path.
func (ss *session) runBound(ctx context.Context, id uint32, text string, args []storage.Value) {
	start := time.Now()
	rows, res, err := ss.es.RunStreamBound(ctx, text, args)
	ss.writeResult(id, rows, res, err, start)
}

// stmtStats builds the Done-frame trailer for a SQL statement: the
// server-side elapsed time and — when the statement was traced — its
// trace id, so a client can join its own latency observation against
// vx$traces without a second round trip. Evaluated after the stream has
// drained (the trace is finished by then).
func (ss *session) stmtStats(start time.Time) []wire.Stat {
	stats := []wire.Stat{{Name: "server_us", Value: time.Since(start).Microseconds()}}
	if tid := ss.es.LastTraceID(); tid != 0 {
		stats = append(stats, wire.Stat{Name: "trace_id", Value: int64(tid)})
	}
	return stats
}

// writeResult frames one statement outcome: an error, a row stream, or
// an exec acknowledgement. start anchors the Done trailer's server-side
// timing.
func (ss *session) writeResult(id uint32, rows *engine.Rows, res engine.Result, err error, start time.Time) {
	if err != nil {
		ss.writeError(id, err.Error())
		return
	}
	if rows != nil {
		ss.writeRowsTrailer(id, rows, func() []wire.Stat { return ss.stmtStats(start) })
		return
	}
	var b wire.Buffer
	b.PutU32(id)
	b.PutUvarint(uint64(res.RowsAffected))
	ss.writeFrame(wire.FrameExecOK, b.B)
	ss.writeDoneStats(id, ss.stmtStats(start))
}

// writeRows streams a result: header, then column-wise batches of at
// most storage.BatchSize rows as the iterator yields them, then Done.
// The first RowsBatch frame ships before the executor has finished —
// first-row latency for a big scan is O(first batch), not O(result).
// A mid-stream failure (executor error, encoder error) terminates the
// statement with a FrameError and nothing after it: the client
// discards any rows already received and surfaces only the error.
func (ss *session) writeRows(id uint32, rows *engine.Rows) {
	ss.writeRowsTrailer(id, rows, nil)
}

// writeRowsStats is writeRows with a fixed stats trailer on the
// terminal Done frame (graph verbs ship their RunStats this way).
func (ss *session) writeRowsStats(id uint32, rows *engine.Rows, stats []wire.Stat) {
	ss.writeRowsTrailer(id, rows, func() []wire.Stat { return stats })
}

// writeRowsTrailer streams a result and writes the Done frame with the
// trailer fn produces. fn runs after the stream has fully drained —
// statement-lifecycle cleanup (trace publication, slow-query logging)
// has already run, so a trailer may read the statement's trace id.
func (ss *session) writeRowsTrailer(id uint32, rows *engine.Rows, fn func() []wire.Stat) {
	defer rows.Close()
	var hdr wire.Buffer
	hdr.PutU32(id)
	wire.AppendSchema(&hdr, rows.Schema())
	if err := ss.writeFrame(wire.FrameRowsHeader, hdr.B); err != nil {
		return
	}
	for {
		batch, err := rows.Next()
		if err != nil {
			ss.writeError(id, err.Error())
			return
		}
		if batch == nil {
			break
		}
		n := batch.Len()
		for lo := 0; lo < n; lo += storage.BatchSize {
			hi := lo + storage.BatchSize
			if hi > n {
				hi = n
			}
			var b wire.Buffer
			b.PutU32(id)
			part := batch
			if lo != 0 || hi != n {
				part = batch.Slice(lo, hi)
			}
			if err := wire.AppendBatch(&b, part); err != nil {
				ss.writeError(id, err.Error())
				return
			}
			if err := ss.writeFrame(wire.FrameRowsBatch, b.B); err != nil {
				return
			}
		}
	}
	var stats []wire.Stat
	if fn != nil {
		stats = fn()
	}
	ss.writeDoneStats(id, stats)
}

func (ss *session) writeFrame(typ byte, payload []byte) error {
	ss.wmu.Lock()
	defer ss.wmu.Unlock()
	// Bound the write: a result stream pins its MVCC snapshot and a
	// session slot, so a client that stops draining its socket must
	// not hold them forever (writers are unaffected either way). Past
	// the deadline the connection is effectively dead and the
	// statement's stream unwinds.
	if ss.srv != nil && ss.srv.cfg.WriteTimeout > 0 {
		ss.conn.SetWriteDeadline(time.Now().Add(ss.srv.cfg.WriteTimeout))
		defer ss.conn.SetWriteDeadline(time.Time{})
	}
	if err := wire.WriteFrame(ss.bw, typ, payload); err != nil {
		ss.conn.Close() // possibly truncated frame: the protocol state is unrecoverable
		return err
	}
	if err := ss.bw.Flush(); err != nil {
		ss.conn.Close()
		return err
	}
	return nil
}

func (ss *session) writeError(id uint32, msg string) {
	var b wire.Buffer
	b.PutU32(id)
	b.PutString(msg)
	ss.writeFrame(wire.FrameError, b.B)
}

func (ss *session) writeDone(id uint32) { ss.writeDoneStats(id, nil) }

func (ss *session) writeDoneStats(id uint32, stats []wire.Stat) {
	var b wire.Buffer
	b.PutU32(id)
	b.PutStats(stats)
	ss.writeFrame(wire.FrameDone, b.B)
}
