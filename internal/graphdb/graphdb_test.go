package graphdb

import (
	"math"
	"testing"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	edges := [][3]float64{
		{1, 2, 1}, {1, 3, 4}, {2, 3, 1}, {3, 1, 2}, {4, 3, 1},
	}
	if err := s.Load(edges); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadAndTraverse(t *testing.T) {
	s := testStore(t)
	if s.NumNodes() != 4 {
		t.Fatalf("nodes = %d", s.NumNodes())
	}
	tx := s.Begin()
	defer tx.Commit()
	nbrs, err := tx.Out(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 2 {
		t.Fatalf("out(1) = %d", len(nbrs))
	}
	if nbrs[1].Weight != 4 {
		t.Errorf("weight property lost: %v", nbrs)
	}
}

func TestTransactionSemantics(t *testing.T) {
	s := New()
	ro := s.Begin()
	if err := ro.CreateNode(1, nil); err == nil {
		t.Error("read-only tx must reject writes")
	}
	ro.Commit()
	w := s.BeginWrite()
	if err := w.CreateNode(1, map[string]interface{}{"name": "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.CreateNode(1, nil); err == nil {
		t.Error("duplicate node must fail")
	}
	if err := w.CreateRel(1, 99, "X", nil); err == nil {
		t.Error("rel to missing node must fail")
	}
	w.Commit()
	w.Commit() // double-commit must be safe

	r := s.Begin()
	if v, ok := r.Prop(1, "name"); !ok || v.(string) != "a" {
		t.Error("property lost")
	}
	r.Commit()
}

func TestGraphDBPageRankSensible(t *testing.T) {
	s := testStore(t)
	ranks, err := PageRank(s, 10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[3] <= ranks[2] || ranks[3] <= ranks[4] {
		t.Errorf("rank order wrong: %v", ranks)
	}
	// Final ranks persisted as properties.
	tx := s.Begin()
	defer tx.Commit()
	if v, ok := tx.Prop(3, "pagerank"); !ok || v.(float64) != ranks[3] {
		t.Error("pagerank property not persisted")
	}
}

func TestGraphDBShortestPaths(t *testing.T) {
	s := testStore(t)
	dist, err := ShortestPaths(s, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{1: 0, 2: 1, 3: 2, 4: math.Inf(1)}
	for id, w := range want {
		if dist[id] != w && !(math.IsInf(dist[id], 1) && math.IsInf(w, 1)) {
			t.Errorf("dist(%d) = %v, want %v", id, dist[id], w)
		}
	}
	if _, err := ShortestPaths(s, 42, false); err == nil {
		t.Error("missing source must error")
	}
}

func TestDistHeapOrdering(t *testing.T) {
	h := &distHeap{}
	for _, d := range []float64{5, 1, 4, 2, 3} {
		h.push(int64(d), d)
	}
	prev := -1.0
	for h.len() > 0 {
		_, d := h.pop()
		if d < prev {
			t.Fatalf("heap popped out of order: %v after %v", d, prev)
		}
		prev = d
	}
}

func TestDegree(t *testing.T) {
	s := testStore(t)
	tx := s.Begin()
	defer tx.Commit()
	d, err := tx.Degree(1)
	if err != nil || d != 2 {
		t.Errorf("degree(1) = %d, %v", d, err)
	}
	if _, err := tx.Degree(42); err == nil {
		t.Error("degree of missing node must error")
	}
}
