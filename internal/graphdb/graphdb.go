// Package graphdb is the transactional graph database stand-in for the
// paper's "Graph Database" baseline (Neo4j in Figure 2): an adjacency-
// list property-graph store with record-level lock-based transactions
// and a traversal API.
//
// Substitution note (see DESIGN.md): Neo4j's poor showing on global
// analytics in the paper comes from per-hop transactional record access
// — every traversal decodes relationship records from the store format
// and every operation pays transaction machinery. This store reproduces
// that cost structure two ways: (1) honestly — adjacency lists are kept
// in a serialized record format (varint-encoded, like Neo4j's
// relationship store) and every Out() call decodes them; and (2) as a
// calibrated model — Commit charges a configurable per-transaction
// latency (default 500µs) standing in for journal writes, page-cache
// churn and query interpretation. The paper's Neo4j spends 775µs per
// node-iteration on Twitter PageRank and ~5ms per node on SSSP, so
// 500µs is conservative.
package graphdb

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Config tunes the store's modeled costs.
type Config struct {
	// TxOverhead is charged at every Commit (default 500µs; negative
	// disables).
	TxOverhead time.Duration
}

func (c Config) withDefaults() Config {
	if c.TxOverhead == 0 {
		c.TxOverhead = 500 * time.Microsecond
	}
	if c.TxOverhead < 0 {
		c.TxOverhead = 0
	}
	return c
}

// node is an internal node record: properties plus the serialized
// relationship store (outRec holds varint-encoded out-relationships).
type node struct {
	mu       sync.RWMutex
	id       int64
	props    map[string]interface{}
	outRec   []byte
	outCount int
}

// Store is a transactional property-graph database.
type Store struct {
	mu       sync.RWMutex
	cfg      Config
	nodes    map[int64]*node
	order    []int64
	relTypes []string
	typeIdx  map[string]uint64
}

// New returns an empty store with default modeled costs.
func New() *Store { return NewWithConfig(Config{}) }

// NewWithConfig returns an empty store with explicit costs (tests use
// TxOverhead: -1 to disable the model).
func NewWithConfig(cfg Config) *Store {
	return &Store{
		cfg:     cfg.withDefaults(),
		nodes:   make(map[int64]*node),
		typeIdx: make(map[string]uint64),
	}
}

// Tx is a transaction: all reads/writes go through it, acquiring
// record-level locks that are held until Commit or Abort (strict 2PL,
// the overhead structure of a transactional graph database).
type Tx struct {
	s        *Store
	writable bool
	locked   map[*node]bool
	done     bool
}

// Begin starts a read-only transaction.
func (s *Store) Begin() *Tx { return &Tx{s: s, locked: make(map[*node]bool)} }

// BeginWrite starts a read-write transaction.
func (s *Store) BeginWrite() *Tx {
	return &Tx{s: s, writable: true, locked: make(map[*node]bool)}
}

// lock acquires the record lock once per transaction.
func (t *Tx) lock(n *node) {
	if t.locked[n] {
		return
	}
	if t.writable {
		n.mu.Lock()
	} else {
		n.mu.RLock()
	}
	t.locked[n] = true
}

// Commit releases every record lock and charges the modeled
// transaction overhead.
func (t *Tx) Commit() {
	if t.done {
		return
	}
	t.done = true
	for n := range t.locked {
		if t.writable {
			n.mu.Unlock()
		} else {
			n.mu.RUnlock()
		}
	}
	t.locked = nil
	if t.s.cfg.TxOverhead > 0 {
		time.Sleep(t.s.cfg.TxOverhead)
	}
}

// Abort is identical to Commit for this in-memory store (no redo log);
// it exists so calling code reads naturally.
func (t *Tx) Abort() { t.Commit() }

// CreateNode inserts a node with properties. Requires a write tx.
func (t *Tx) CreateNode(id int64, props map[string]interface{}) error {
	if !t.writable {
		return fmt.Errorf("graphdb: CreateNode in read-only transaction")
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if _, ok := t.s.nodes[id]; ok {
		return fmt.Errorf("graphdb: node %d already exists", id)
	}
	if props == nil {
		props = make(map[string]interface{})
	}
	n := &node{id: id, props: props}
	t.s.nodes[id] = n
	t.s.order = append(t.s.order, id)
	return nil
}

// typeCode interns a relationship type string.
func (s *Store) typeCode(typ string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.typeIdx[typ]; ok {
		return c
	}
	c := uint64(len(s.relTypes))
	s.relTypes = append(s.relTypes, typ)
	s.typeIdx[typ] = c
	return c
}

// CreateRel links two existing nodes, appending a serialized
// relationship record (dst, type code, weight) to the source's
// relationship store. Requires a write tx. Only the "weight" property
// is stored per relationship, matching what the analyses read.
func (t *Tx) CreateRel(src, dst int64, typ string, props map[string]interface{}) error {
	if !t.writable {
		return fmt.Errorf("graphdb: CreateRel in read-only transaction")
	}
	t.s.mu.RLock()
	sn, ok1 := t.s.nodes[src]
	_, ok2 := t.s.nodes[dst]
	t.s.mu.RUnlock()
	if !ok1 || !ok2 {
		return fmt.Errorf("graphdb: relationship endpoints %d→%d missing", src, dst)
	}
	weight := 1.0
	if wv, ok := props["weight"]; ok {
		if f, ok := wv.(float64); ok {
			weight = f
		}
	}
	code := t.s.typeCode(typ)
	t.lock(sn)
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], dst)
	sn.outRec = append(sn.outRec, buf[:n]...)
	n = binary.PutUvarint(buf[:], code)
	sn.outRec = append(sn.outRec, buf[:n]...)
	var wb [8]byte
	binary.LittleEndian.PutUint64(wb[:], math.Float64bits(weight))
	sn.outRec = append(sn.outRec, wb[:]...)
	sn.outCount++
	return nil
}

// Neighbor is one traversal step's result.
type Neighbor struct {
	ID     int64
	Type   string
	Weight float64
}

// Out returns the out-neighbors of a node by decoding its relationship
// store — the per-hop record decoding a graph database pays.
func (t *Tx) Out(id int64) ([]Neighbor, error) {
	t.s.mu.RLock()
	n, ok := t.s.nodes[id]
	relTypes := t.s.relTypes
	t.s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("graphdb: no node %d", id)
	}
	t.lock(n)
	out := make([]Neighbor, 0, n.outCount)
	rec := n.outRec
	for len(rec) > 0 {
		dst, k := binary.Varint(rec)
		if k <= 0 {
			return nil, fmt.Errorf("graphdb: corrupt relationship store at node %d", id)
		}
		rec = rec[k:]
		code, k := binary.Uvarint(rec)
		if k <= 0 || int(code) >= len(relTypes) {
			return nil, fmt.Errorf("graphdb: corrupt relationship type at node %d", id)
		}
		rec = rec[k:]
		if len(rec) < 8 {
			return nil, fmt.Errorf("graphdb: truncated relationship record at node %d", id)
		}
		w := math.Float64frombits(binary.LittleEndian.Uint64(rec))
		rec = rec[8:]
		out = append(out, Neighbor{ID: dst, Type: relTypes[code], Weight: w})
	}
	return out, nil
}

// Degree returns the out-degree of a node.
func (t *Tx) Degree(id int64) (int, error) {
	t.s.mu.RLock()
	n, ok := t.s.nodes[id]
	t.s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("graphdb: no node %d", id)
	}
	t.lock(n)
	return n.outCount, nil
}

// Prop reads one node property.
func (t *Tx) Prop(id int64, key string) (interface{}, bool) {
	t.s.mu.RLock()
	n, ok := t.s.nodes[id]
	t.s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	t.lock(n)
	v, ok := n.props[key]
	return v, ok
}

// SetProp writes one node property. Requires a write tx.
func (t *Tx) SetProp(id int64, key string, v interface{}) error {
	if !t.writable {
		return fmt.Errorf("graphdb: SetProp in read-only transaction")
	}
	t.s.mu.RLock()
	n, ok := t.s.nodes[id]
	t.s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("graphdb: no node %d", id)
	}
	t.lock(n)
	n.props[key] = v
	return nil
}

// NodeIDs lists all node ids in insertion order.
func (s *Store) NodeIDs() []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]int64(nil), s.order...)
}

// NumNodes returns the node count.
func (s *Store) NumNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// Load bulk-inserts a graph (one transaction per batch of 1024
// operations, like a batched importer). Rows are (src, dst, weight).
func (s *Store) Load(edges [][3]float64) error {
	tx := s.BeginWrite()
	seen := make(map[int64]bool)
	ensure := func(id int64) error {
		if seen[id] {
			return nil
		}
		seen[id] = true
		return tx.CreateNode(id, nil)
	}
	ops := 0
	for _, e := range edges {
		src, dst, w := int64(e[0]), int64(e[1]), e[2]
		if err := ensure(src); err != nil {
			return err
		}
		if err := ensure(dst); err != nil {
			return err
		}
		if err := tx.CreateRel(src, dst, "LINK", map[string]interface{}{"weight": w}); err != nil {
			return err
		}
		ops += 3
		if ops >= 1024 {
			tx.Commit()
			tx = s.BeginWrite()
			ops = 0
		}
	}
	tx.Commit()
	return nil
}

// PageRank runs PageRank through the transactional API: every
// iteration opens a transaction per node to read its adjacency and
// push contributions — the per-hop transactional cost a graph database
// pays for global analytics.
func PageRank(s *Store, iterations int, damping float64) (map[int64]float64, error) {
	if damping == 0 {
		damping = 0.85
	}
	ids := s.NodeIDs()
	n := float64(len(ids))
	if n == 0 {
		return map[int64]float64{}, nil
	}
	rank := make(map[int64]float64, len(ids))
	for _, id := range ids {
		rank[id] = 1.0 / n
	}
	for it := 0; it < iterations; it++ {
		incoming := make(map[int64]float64, len(ids))
		for _, id := range ids {
			tx := s.Begin()
			nbrs, err := tx.Out(id)
			if err != nil {
				tx.Abort()
				return nil, err
			}
			if len(nbrs) > 0 {
				share := rank[id] / float64(len(nbrs))
				for _, nb := range nbrs {
					incoming[nb.ID] += share
				}
			}
			tx.Commit()
		}
		for _, id := range ids {
			rank[id] = (1-damping)/n + damping*incoming[id]
		}
	}
	// Persist final ranks as node properties, one write tx per node.
	for _, id := range ids {
		tx := s.BeginWrite()
		if err := tx.SetProp(id, "pagerank", rank[id]); err != nil {
			tx.Abort()
			return nil, err
		}
		tx.Commit()
	}
	return rank, nil
}

// ShortestPaths runs Dijkstra through the transactional traversal API.
func ShortestPaths(s *Store, source int64, unitWeights bool) (map[int64]float64, error) {
	dist := make(map[int64]float64, s.NumNodes())
	for _, id := range s.NodeIDs() {
		dist[id] = math.Inf(1)
	}
	if _, ok := dist[source]; !ok {
		return nil, fmt.Errorf("graphdb: no node %d", source)
	}
	dist[source] = 0
	visited := make(map[int64]bool)
	h := &distHeap{}
	h.push(source, 0)
	for h.len() > 0 {
		id, d := h.pop()
		if visited[id] || d > dist[id] {
			continue
		}
		visited[id] = true
		tx := s.Begin()
		nbrs, err := tx.Out(id)
		if err != nil {
			tx.Abort()
			return nil, err
		}
		tx.Commit()
		for _, nb := range nbrs {
			w := nb.Weight
			if unitWeights || w <= 0 {
				w = 1
			}
			if nd := d + w; nd < dist[nb.ID] {
				dist[nb.ID] = nd
				h.push(nb.ID, nd)
			}
		}
	}
	return dist, nil
}

// distHeap is a minimal binary min-heap keyed on distance.
type distHeap struct {
	ids []int64
	ds  []float64
}

func (h *distHeap) len() int { return len(h.ids) }

func (h *distHeap) push(id int64, d float64) {
	h.ids = append(h.ids, id)
	h.ds = append(h.ds, d)
	i := len(h.ids) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ds[p] <= h.ds[i] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *distHeap) pop() (int64, float64) {
	id, d := h.ids[0], h.ds[0]
	last := len(h.ids) - 1
	h.swap(0, last)
	h.ids = h.ids[:last]
	h.ds = h.ds[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.ds[l] < h.ds[small] {
			small = l
		}
		if r < last && h.ds[r] < h.ds[small] {
			small = r
		}
		if small == i {
			break
		}
		h.swap(i, small)
		i = small
	}
	return id, d
}

func (h *distHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.ds[i], h.ds[j] = h.ds[j], h.ds[i]
}

// SortedNodeIDs returns node ids ascending (test helper).
func (s *Store) SortedNodeIDs() []int64 {
	ids := s.NodeIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
