// Package algorithms provides the vertex-centric graph programs the
// paper demonstrates on Vertexica: PageRank, single-source shortest
// paths, connected components, collaborative filtering, and random walk
// with restart (§3.1), plus small utility programs (degree counting).
//
// Vertex values and messages are strings (the vertex table stores
// VARCHAR), so each algorithm brings a codec — mirroring the paper's
// UDFs, which parse untyped tuples. That serialization tax is exactly
// why the hand-tuned SQL implementations in package sqlgraph are
// faster, as in the paper's Figure 2.
package algorithms

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// formatFloat renders a float64 compactly and losslessly.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// parseFloat decodes a float; empty strings decode as +Inf (the
// "unreached" distance) and parse failures as def.
func parseFloat(s string, def float64) float64 {
	if s == "" {
		return def
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return def
	}
	return f
}

// inf is the encoded "unreached" distance.
var inf = math.Inf(1)

// encodeVec renders a latent-factor vector as comma-separated floats.
func encodeVec(v []float64) string {
	parts := make([]string, len(v))
	for i, f := range v {
		parts[i] = formatFloat(f)
	}
	return strings.Join(parts, ",")
}

// decodeVec parses a comma-separated float vector.
func decodeVec(s string, dim int) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("algorithms: empty vector")
	}
	parts := strings.Split(s, ",")
	if len(parts) != dim {
		return nil, fmt.Errorf("algorithms: vector has %d components, want %d", len(parts), dim)
	}
	out := make([]float64, dim)
	for i, p := range parts {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("algorithms: bad vector component %q", p)
		}
		out[i] = f
	}
	return out, nil
}

// dot is the inner product of two equal-length vectors.
func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// pseudoRand returns a deterministic pseudo-random float in (0, 1)
// derived from a seed — used to initialize latent vectors identically
// across systems without math/rand state.
func pseudoRand(seed int64) float64 {
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x%1000003)/1000003.0*0.9 + 0.05
}
