package algorithms

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// twoCliques builds two dense 4-cliques joined by a single bridge edge
// — the canonical community-detection fixture.
func twoCliques(t *testing.T) *core.Graph {
	t.Helper()
	db := engine.New()
	g, err := core.CreateGraph(db, "lp")
	if err != nil {
		t.Fatal(err)
	}
	var edges []core.Edge
	clique := func(ids []int64) {
		for i := 0; i < len(ids); i++ {
			for j := 0; j < len(ids); j++ {
				if i != j {
					edges = append(edges, core.Edge{Src: ids[i], Dst: ids[j], Weight: 1})
				}
			}
		}
	}
	clique([]int64{0, 1, 2, 3})
	clique([]int64{10, 11, 12, 13})
	edges = append(edges,
		core.Edge{Src: 3, Dst: 10, Weight: 1},
		core.Edge{Src: 10, Dst: 3, Weight: 1})
	if err := g.BulkLoad(nil, edges); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLabelPropagationFindsCommunities(t *testing.T) {
	g := twoCliques(t)
	labels, stats, err := RunLabelPropagation(context.Background(), g, 15, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps == 0 {
		t.Fatal("did not run")
	}
	// Clique A converges to one label, clique B to another.
	for _, id := range []int64{1, 2, 3} {
		if labels[id] != labels[0] {
			t.Errorf("vertex %d label %d, want clique label %d", id, labels[id], labels[0])
		}
	}
	for _, id := range []int64{11, 12, 13} {
		if labels[id] != labels[10] {
			t.Errorf("vertex %d label %d, want clique label %d", id, labels[id], labels[10])
		}
	}
	if labels[0] == labels[10] {
		t.Error("two cliques should not merge across one bridge")
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	var runs [2]map[int64]int64
	for i := range runs {
		g := twoCliques(t)
		labels, _, err := RunLabelPropagation(context.Background(), g, 15, core.Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = labels
	}
	for id, l := range runs[0] {
		if runs[1][id] != l {
			t.Errorf("nondeterministic label at %d: %d vs %d", id, l, runs[1][id])
		}
	}
}

func TestMostFrequentLabel(t *testing.T) {
	msgs := func(vals ...string) []core.Message {
		out := make([]core.Message, len(vals))
		for i, v := range vals {
			out[i] = core.Message{Value: v}
		}
		return out
	}
	if got := mostFrequentLabel(msgs("5", "5", "9"), "1"); got != "5" {
		t.Errorf("mode = %s, want 5", got)
	}
	// Tie breaks to the numerically smallest label.
	if got := mostFrequentLabel(msgs("9", "5"), "1"); got != "5" {
		t.Errorf("tie-break = %s, want 5", got)
	}
	if got := mostFrequentLabel(nil, "7"); got != "7" {
		t.Errorf("empty inbox should keep current, got %s", got)
	}
}
