package algorithms

import (
	"context"

	"repro/internal/core"
)

// SSSP is single-source shortest paths as a vertex program: the source
// starts at distance 0 and relaxations propagate as messages carrying
// candidate distances. Every vertex votes to halt each superstep and is
// reawakened only by a shorter candidate — the canonical Pregel SSSP.
type SSSP struct {
	Source int64
	// UnitWeights treats every edge as weight 1 (hop counts); otherwise
	// the edge's weight attribute is used.
	UnitWeights bool
}

// Combiner implements core.HasCombiner: candidate distances combine by
// minimum.
func (s *SSSP) Combiner() core.Combiner {
	return func(_ int64, a, b string) (string, bool) {
		da, db := parseFloat(a, inf), parseFloat(b, inf)
		if da <= db {
			return a, true
		}
		return b, true
	}
}

// Compute implements core.VertexProgram.
func (s *SSSP) Compute(ctx *core.VertexContext, msgs []core.Message) error {
	cur := parseFloat(ctx.GetVertexValue(), inf)
	if ctx.Superstep() == 0 {
		if ctx.Id() == s.Source {
			cur = 0
			ctx.ModifyVertexValue(formatFloat(cur))
			s.relax(ctx, cur)
		} else {
			ctx.ModifyVertexValue(formatFloat(inf))
		}
		ctx.VoteToHalt()
		return nil
	}
	best := cur
	for _, m := range msgs {
		if d := parseFloat(m.Value, inf); d < best {
			best = d
		}
	}
	if best < cur {
		ctx.ModifyVertexValue(formatFloat(best))
		s.relax(ctx, best)
	}
	ctx.VoteToHalt()
	return nil
}

func (s *SSSP) relax(ctx *core.VertexContext, dist float64) {
	for _, e := range ctx.GetOutEdges() {
		w := e.Weight
		if s.UnitWeights || w <= 0 {
			w = 1
		}
		ctx.SendMessage(e.Dst, formatFloat(dist+w))
	}
}

// RunSSSP resets the graph and computes shortest-path distances from
// the source; unreachable vertices map to +Inf.
func RunSSSP(ctx context.Context, g *core.Graph, source int64, unitWeights bool, opts core.Options) (map[int64]float64, *core.RunStats, error) {
	if err := g.ResetForRun(func(int64) string { return "" }); err != nil {
		return nil, nil, err
	}
	stats, err := core.Run(ctx, g, &SSSP{Source: source, UnitWeights: unitWeights}, opts)
	if err != nil {
		return nil, nil, err
	}
	dists, err := g.FloatValues()
	if err != nil {
		return nil, nil, err
	}
	return dists, stats, nil
}
