package algorithms

import (
	"context"

	"repro/internal/core"
)

// RandomWalkRestart computes random-walk-with-restart scores
// (personalized PageRank) from a source vertex: at every step the
// walker follows out-edges with probability 1-c and teleports back to
// the source with probability c. Scores converge to the stationary
// visiting distribution. The paper lists RWR among the message-passing
// algorithms Vertexica expresses naturally (§1).
type RandomWalkRestart struct {
	Source     int64
	Iterations int
	// Restart is c, the teleport probability (default 0.15).
	Restart float64
}

func (r *RandomWalkRestart) restart() float64 {
	if r.Restart == 0 {
		return 0.15
	}
	return r.Restart
}

// Combiner implements core.HasCombiner: probability mass sums.
func (r *RandomWalkRestart) Combiner() core.Combiner {
	return func(_ int64, a, b string) (string, bool) {
		return formatFloat(parseFloat(a, 0) + parseFloat(b, 0)), true
	}
}

// Compute implements core.VertexProgram.
func (r *RandomWalkRestart) Compute(ctx *core.VertexContext, msgs []core.Message) error {
	c := r.restart()
	var score float64
	if ctx.Superstep() == 0 {
		if ctx.Id() == r.Source {
			score = 1.0
		}
	} else {
		sum := 0.0
		for _, m := range msgs {
			sum += parseFloat(m.Value, 0)
		}
		restartMass := 0.0
		if ctx.Id() == r.Source {
			restartMass = c
		}
		score = (1-c)*sum + restartMass
	}
	ctx.ModifyVertexValue(formatFloat(score))
	if ctx.Superstep() >= r.Iterations {
		ctx.VoteToHalt()
		return nil
	}
	if deg := ctx.OutDegree(); deg > 0 && score > 0 {
		ctx.SendMessageToAllNeighbors(formatFloat(score / float64(deg)))
	}
	return nil
}

// RunRandomWalkRestart resets the graph and returns RWR scores.
func RunRandomWalkRestart(ctx context.Context, g *core.Graph, source int64, iterations int, opts core.Options) (map[int64]float64, *core.RunStats, error) {
	if err := g.ResetForRun(func(int64) string { return "" }); err != nil {
		return nil, nil, err
	}
	prog := &RandomWalkRestart{Source: source, Iterations: iterations}
	stats, err := core.Run(ctx, g, prog, opts)
	if err != nil {
		return nil, nil, err
	}
	scores, err := g.FloatValues()
	if err != nil {
		return nil, nil, err
	}
	return scores, stats, nil
}

// DegreeCount is a one-superstep utility program that records each
// vertex's in-degree (via messages) and out-degree in its value as
// "in,out". It doubles as the smallest possible example of the API.
type DegreeCount struct{}

// Compute implements core.VertexProgram.
func (DegreeCount) Compute(ctx *core.VertexContext, msgs []core.Message) error {
	if ctx.Superstep() == 0 {
		ctx.SendMessageToAllNeighbors("1")
		return nil
	}
	in := len(msgs)
	ctx.ModifyVertexValue(formatFloat(float64(in)) + "," + formatFloat(float64(ctx.OutDegree())))
	ctx.VoteToHalt()
	return nil
}
