package algorithms

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// testGraph loads a small directed graph used across the tests:
//
//	1 → 2, 1 → 3, 2 → 3, 3 → 1, 4 → 3   (5 edges, 4 vertices)
func testGraph(t *testing.T) *core.Graph {
	t.Helper()
	db := engine.New()
	g, err := core.CreateGraph(db, "t")
	if err != nil {
		t.Fatal(err)
	}
	edges := []core.Edge{
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 1, Dst: 3, Weight: 4},
		{Src: 2, Dst: 3, Weight: 1},
		{Src: 3, Dst: 1, Weight: 2},
		{Src: 4, Dst: 3, Weight: 1},
	}
	if err := g.BulkLoad(nil, edges); err != nil {
		t.Fatal(err)
	}
	return g
}

// refPageRank is the plain in-memory oracle, same conventions as the
// vertex program (no dangling redistribution).
func refPageRank(n int, edges map[int64][]int64, iters int, d float64) map[int64]float64 {
	rank := make(map[int64]float64, n)
	var ids []int64
	for src := range edges {
		ids = append(ids, src)
	}
	seen := map[int64]bool{}
	for src, dsts := range edges {
		seen[src] = true
		for _, dst := range dsts {
			if !seen[dst] {
				seen[dst] = true
				ids = append(ids, dst)
			}
		}
	}
	for id := range seen {
		rank[id] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		next := make(map[int64]float64, n)
		for id := range rank {
			next[id] = (1 - d) / float64(n)
		}
		for src, dsts := range edges {
			share := d * rank[src] / float64(len(dsts))
			for _, dst := range dsts {
				next[dst] += share
			}
		}
		rank = next
	}
	return rank
}

func TestPageRankMatchesReference(t *testing.T) {
	g := testGraph(t)
	got, stats, err := RunPageRank(context.Background(), g, 10, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := refPageRank(4, map[int64][]int64{1: {2, 3}, 2: {3}, 3: {1}, 4: {3}}, 10, 0.85)
	for id, w := range want {
		if math.Abs(got[id]-w) > 1e-9 {
			t.Errorf("rank(%d) = %.12f, want %.12f", id, got[id], w)
		}
	}
	if stats.Supersteps != 12 { // steps 0..10 compute, step 11 confirms halt
		t.Logf("supersteps = %d", stats.Supersteps)
	}
}

func TestPageRankCombinerOnOffAgree(t *testing.T) {
	var ranks [2]map[int64]float64
	for i, disable := range []bool{false, true} {
		g := testGraph(t)
		r, _, err := RunPageRank(context.Background(), g, 5, core.Options{DisableCombiner: disable})
		if err != nil {
			t.Fatal(err)
		}
		ranks[i] = r
	}
	for id, v := range ranks[0] {
		if math.Abs(ranks[1][id]-v) > 1e-12 {
			t.Errorf("combiner changes results at vertex %d: %v vs %v", id, v, ranks[1][id])
		}
	}
}

func TestPageRankEpsilonStopsEarly(t *testing.T) {
	g := testGraph(t)
	if err := g.ResetForRun(func(int64) string { return "" }); err != nil {
		t.Fatal(err)
	}
	prog := &PageRank{Iterations: 500, Damping: 0.85, Epsilon: 0.5}
	stats, err := core.Run(context.Background(), g, prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps >= 500 {
		t.Errorf("epsilon termination did not kick in: %d supersteps", stats.Supersteps)
	}
}

// dijkstra is the SSSP oracle.
func dijkstra(edges []core.Edge, source int64, unit bool) map[int64]float64 {
	adj := map[int64][]core.Edge{}
	nodes := map[int64]bool{}
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e)
		nodes[e.Src], nodes[e.Dst] = true, true
	}
	dist := map[int64]float64{}
	for n := range nodes {
		dist[n] = math.Inf(1)
	}
	dist[source] = 0
	visited := map[int64]bool{}
	for {
		best, bd := int64(-1), math.Inf(1)
		for n, d := range dist {
			if !visited[n] && d < bd {
				best, bd = n, d
			}
		}
		if best == -1 {
			return dist
		}
		visited[best] = true
		for _, e := range adj[best] {
			w := e.Weight
			if unit || w <= 0 {
				w = 1
			}
			if nd := bd + w; nd < dist[e.Dst] {
				dist[e.Dst] = nd
			}
		}
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	edges := []core.Edge{
		{Src: 1, Dst: 2, Weight: 1}, {Src: 1, Dst: 3, Weight: 4},
		{Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 1, Weight: 2},
		{Src: 4, Dst: 3, Weight: 1},
	}
	for _, unit := range []bool{false, true} {
		g := testGraph(t)
		got, _, err := RunSSSP(context.Background(), g, 1, unit, core.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		want := dijkstra(edges, 1, unit)
		for id, w := range want {
			if got[id] != w && !(math.IsInf(got[id], 1) && math.IsInf(w, 1)) {
				t.Errorf("unit=%v dist(%d) = %v, want %v", unit, id, got[id], w)
			}
		}
	}
}

func TestSSSPUnreachableIsInf(t *testing.T) {
	g := testGraph(t)
	got, _, err := RunSSSP(context.Background(), g, 2, true, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 has no in-edges, unreachable from 2.
	if !math.IsInf(got[4], 1) {
		t.Errorf("dist(4) = %v, want +Inf", got[4])
	}
}

func TestConnectedComponents(t *testing.T) {
	db := engine.New()
	g, _ := core.CreateGraph(db, "cc")
	// Two components (symmetrized edges): {1,2,3} and {7,8}.
	edges := []core.Edge{
		{Src: 1, Dst: 2}, {Src: 2, Dst: 1},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
		{Src: 7, Dst: 8}, {Src: 8, Dst: 7},
	}
	if err := g.BulkLoad(nil, edges); err != nil {
		t.Fatal(err)
	}
	labels, _, err := RunConnectedComponents(context.Background(), g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if labels[1] != 1 || labels[2] != 1 || labels[3] != 1 {
		t.Errorf("component A labels: %v", labels)
	}
	if labels[7] != 7 || labels[8] != 7 {
		t.Errorf("component B labels: %v", labels)
	}
}

func TestCollabFilterLearnsRatings(t *testing.T) {
	db := engine.New()
	g, _ := core.CreateGraph(db, "cf")
	// Bipartite: users 1,2; items 101,102. Ratings symmetric edges.
	rate := func(u, it int64, r float64) []core.Edge {
		return []core.Edge{{Src: u, Dst: it, Weight: r}, {Src: it, Dst: u, Weight: r}}
	}
	var edges []core.Edge
	edges = append(edges, rate(1, 101, 5)...)
	edges = append(edges, rate(1, 102, 1)...)
	edges = append(edges, rate(2, 101, 4)...)
	if err := g.BulkLoad(nil, edges); err != nil {
		t.Fatal(err)
	}
	prog := NewCollabFilter(4, 60)
	vecs, _, err := RunCollabFilter(context.Background(), g, prog, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p1, ok := Predict(vecs, 1, 101)
	if !ok {
		t.Fatal("missing vectors")
	}
	p2, _ := Predict(vecs, 1, 102)
	if math.Abs(p1-5) > 1.0 {
		t.Errorf("predicted rating(1,101) = %.3f, want ≈5", p1)
	}
	if math.Abs(p2-1) > 1.0 {
		t.Errorf("predicted rating(1,102) = %.3f, want ≈1", p2)
	}
	if p1 <= p2 {
		t.Errorf("preference order lost: %.3f <= %.3f", p1, p2)
	}
}

func TestRandomWalkRestartConcentratesNearSource(t *testing.T) {
	g := testGraph(t)
	scores, _, err := RunRandomWalkRestart(context.Background(), g, 1, 30, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if scores[1] <= scores[4] {
		t.Errorf("source score %.4f should exceed far vertex %.4f", scores[1], scores[4])
	}
	total := 0.0
	for _, s := range scores {
		total += s
	}
	if total <= 0 || total > 1.2 {
		t.Errorf("scores look unnormalized: total=%.4f", total)
	}
}

func TestDegreeCount(t *testing.T) {
	g := testGraph(t)
	if err := g.ResetForRun(func(int64) string { return "" }); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(context.Background(), g, DegreeCount{}, core.Options{}); err != nil {
		t.Fatal(err)
	}
	vals, _ := g.VertexValues()
	if vals[3] != "3,1" { // in-degree 3 (from 1,2,4), out-degree 1
		t.Errorf("vertex 3 degrees = %q, want \"3,1\"", vals[3])
	}
}

func TestVecCodecRoundTrip(t *testing.T) {
	in := []float64{0.5, -1.25, 3}
	out, err := decodeVec(encodeVec(in), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("vec[%d] = %v, want %v", i, out[i], in[i])
		}
	}
	if _, err := decodeVec("1,2", 3); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := decodeVec("", 3); err == nil {
		t.Error("empty vector should error")
	}
	if _, err := decodeVec("a,b,c", 3); err == nil {
		t.Error("garbage should error")
	}
}

func TestParseFloatDefaults(t *testing.T) {
	if v := parseFloat("", 42); v != 42 {
		t.Error("empty should default")
	}
	if v := parseFloat("junk", 7); v != 7 {
		t.Error("junk should default")
	}
	if v := parseFloat("+Inf", 0); !math.IsInf(v, 1) {
		t.Error("inf should parse")
	}
}
