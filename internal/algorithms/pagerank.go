package algorithms

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// PageRank is the classic Pregel PageRank program: in superstep 0 every
// vertex starts at 1/N; in each later superstep it sets its rank to
// (1-d)/N + d·Σ(incoming) and, while iterations remain, sends
// rank/outdegree along every out-edge. Dangling mass is not
// redistributed (the Giraph default), so all four systems in the
// Figure 2 reproduction agree bit-for-bit on the same convention.
type PageRank struct {
	// Iterations is the number of rank-update rounds (paper runs 10).
	Iterations int
	// Damping is d (default 0.85).
	Damping float64
	// Epsilon, when positive, stops early once the global rank delta
	// (a SUM aggregator) falls below it.
	Epsilon float64
}

// NewPageRank returns a PageRank program with the paper's defaults.
func NewPageRank(iterations int) *PageRank {
	return &PageRank{Iterations: iterations, Damping: 0.85}
}

func (p *PageRank) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

// Aggregators implements core.HasAggregators: "delta" tracks global
// rank movement for epsilon termination.
func (p *PageRank) Aggregators() []core.AggregatorSpec {
	return []core.AggregatorSpec{{Name: "delta", Kind: core.AggregateSum}}
}

// Combiner implements core.HasCombiner: partial rank contributions sum.
func (p *PageRank) Combiner() core.Combiner {
	return func(_ int64, a, b string) (string, bool) {
		return formatFloat(parseFloat(a, 0) + parseFloat(b, 0)), true
	}
}

// Compute implements core.VertexProgram.
func (p *PageRank) Compute(ctx *core.VertexContext, msgs []core.Message) error {
	n := float64(ctx.NumVertices())
	d := p.damping()
	var rank float64
	switch {
	case ctx.Superstep() == 0:
		rank = 1.0 / n
	default:
		sum := 0.0
		for _, m := range msgs {
			sum += parseFloat(m.Value, 0)
		}
		rank = (1-d)/n + d*sum
	}
	old := parseFloat(ctx.GetVertexValue(), 0)
	ctx.ModifyVertexValue(formatFloat(rank))
	if err := ctx.Aggregate("delta", abs(rank-old)); err != nil {
		return err
	}

	if p.Epsilon > 0 && ctx.Superstep() > 0 {
		if delta, ok := ctx.AggregatedValue("delta"); ok && delta < p.Epsilon {
			ctx.VoteToHalt()
			return nil
		}
	}
	if ctx.Superstep() >= p.Iterations {
		ctx.VoteToHalt()
		return nil
	}
	if deg := ctx.OutDegree(); deg > 0 {
		ctx.SendMessageToAllNeighbors(formatFloat(rank / float64(deg)))
	}
	return nil
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// RunPageRank resets the graph and runs PageRank, returning the final
// rank of every vertex.
func RunPageRank(ctx context.Context, g *core.Graph, iterations int, opts core.Options) (map[int64]float64, *core.RunStats, error) {
	if iterations <= 0 {
		return nil, nil, fmt.Errorf("algorithms: PageRank needs iterations > 0")
	}
	if err := g.ResetForRun(func(int64) string { return "" }); err != nil {
		return nil, nil, err
	}
	stats, err := core.Run(ctx, g, NewPageRank(iterations), opts)
	if err != nil {
		return nil, nil, err
	}
	ranks, err := g.FloatValues()
	if err != nil {
		return nil, nil, err
	}
	return ranks, stats, nil
}
