package algorithms

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// CollabFilter is vertex-centric collaborative filtering on a bipartite
// user–item graph (§3.1 of the paper): every vertex holds a latent
// factor vector; each superstep it broadcasts the vector to its
// neighbors and applies one stochastic-gradient step per observed
// rating (the edge weight) using the vectors it received. After
// Iterations rounds of updates every vertex halts; predicted ratings
// are dot products of the final vectors.
type CollabFilter struct {
	// Dim is the latent dimension (default 8).
	Dim int
	// Iterations is the number of gradient rounds (default 10).
	Iterations int
	// LearningRate is the SGD step size (default 0.05).
	LearningRate float64
	// Lambda is the L2 regularization weight (default 0.05).
	Lambda float64
}

// NewCollabFilter returns a program with standard hyperparameters.
func NewCollabFilter(dim, iterations int) *CollabFilter {
	return &CollabFilter{Dim: dim, Iterations: iterations, LearningRate: 0.05, Lambda: 0.05}
}

func (c *CollabFilter) dims() int {
	if c.Dim <= 0 {
		return 8
	}
	return c.Dim
}

// initVector deterministically seeds a vertex's latent vector.
func (c *CollabFilter) initVector(id int64) []float64 {
	v := make([]float64, c.dims())
	for i := range v {
		v[i] = pseudoRand(id*31 + int64(i))
	}
	return v
}

// InitialValue renders the deterministic starting vector for a vertex
// (exported so other systems can start from identical state).
func (c *CollabFilter) InitialValue(id int64) string { return encodeVec(c.initVector(id)) }

// Compute implements core.VertexProgram. Message format: "src|vec".
func (c *CollabFilter) Compute(ctx *core.VertexContext, msgs []core.Message) error {
	dim := c.dims()
	var vec []float64
	if ctx.Superstep() == 0 {
		if cur := ctx.GetVertexValue(); cur != "" {
			v, err := decodeVec(cur, dim)
			if err != nil {
				return err
			}
			vec = v
		} else {
			vec = c.initVector(ctx.Id())
		}
	} else {
		v, err := decodeVec(ctx.GetVertexValue(), dim)
		if err != nil {
			return err
		}
		vec = v
		// Ratings on out-edges, keyed by neighbor.
		rating := make(map[int64]float64, ctx.OutDegree())
		for _, e := range ctx.GetOutEdges() {
			rating[e.Dst] = e.Weight
		}
		lr, lam := c.LearningRate, c.Lambda
		if lr == 0 {
			lr = 0.05
		}
		for _, m := range msgs {
			src, other, err := decodeCFMessage(m.Value, dim)
			if err != nil {
				return err
			}
			r, ok := rating[src]
			if !ok {
				continue // no observed rating for this neighbor
			}
			e := r - dot(vec, other)
			for i := range vec {
				vec[i] += lr * (e*other[i] - lam*vec[i])
			}
		}
		ctx.ModifyVertexValue(encodeVec(vec))
	}
	if ctx.Superstep() == 0 {
		ctx.ModifyVertexValue(encodeVec(vec))
	}
	if ctx.Superstep() >= c.iterations() {
		ctx.VoteToHalt()
		return nil
	}
	msg := strconv.FormatInt(ctx.Id(), 10) + "|" + encodeVec(vec)
	ctx.SendMessageToAllNeighbors(msg)
	return nil
}

func (c *CollabFilter) iterations() int {
	if c.Iterations <= 0 {
		return 10
	}
	return c.Iterations
}

func decodeCFMessage(s string, dim int) (int64, []float64, error) {
	i := strings.IndexByte(s, '|')
	if i < 0 {
		return 0, nil, fmt.Errorf("algorithms: bad CF message %q", s)
	}
	src, err := strconv.ParseInt(s[:i], 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("algorithms: bad CF message source %q", s[:i])
	}
	vec, err := decodeVec(s[i+1:], dim)
	if err != nil {
		return 0, nil, err
	}
	return src, vec, nil
}

// RunCollabFilter resets the graph, trains the latent vectors, and
// returns them per vertex.
func RunCollabFilter(ctx context.Context, g *core.Graph, prog *CollabFilter, opts core.Options) (map[int64][]float64, *core.RunStats, error) {
	if err := g.ResetForRun(func(id int64) string { return prog.InitialValue(id) }); err != nil {
		return nil, nil, err
	}
	stats, err := core.Run(ctx, g, prog, opts)
	if err != nil {
		return nil, nil, err
	}
	vals, err := g.VertexValues()
	if err != nil {
		return nil, nil, err
	}
	out := make(map[int64][]float64, len(vals))
	for id, s := range vals {
		v, err := decodeVec(s, prog.dims())
		if err != nil {
			return nil, nil, fmt.Errorf("algorithms: vertex %d: %w", id, err)
		}
		out[id] = v
	}
	return out, stats, nil
}

// Predict returns the model's predicted rating for a (user, item) pair.
func Predict(vectors map[int64][]float64, user, item int64) (float64, bool) {
	u, ok1 := vectors[user]
	v, ok2 := vectors[item]
	if !ok1 || !ok2 {
		return 0, false
	}
	return dot(u, v), true
}
