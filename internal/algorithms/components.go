package algorithms

import (
	"context"
	"strconv"

	"repro/internal/core"
)

// ConnectedComponents labels every vertex with the minimum vertex id
// reachable from it (HCC / label propagation). On directed graphs it
// computes components over the edges as stored, so callers wanting weak
// connectivity should load a symmetrized edge set (the dataset package
// does this with MakeUndirected).
type ConnectedComponents struct{}

// Combiner implements core.HasCombiner: candidate labels combine by
// minimum.
func (ConnectedComponents) Combiner() core.Combiner {
	return func(_ int64, a, b string) (string, bool) {
		la, _ := strconv.ParseInt(a, 10, 64)
		lb, _ := strconv.ParseInt(b, 10, 64)
		if la <= lb {
			return a, true
		}
		return b, true
	}
}

// Compute implements core.VertexProgram.
func (ConnectedComponents) Compute(ctx *core.VertexContext, msgs []core.Message) error {
	if ctx.Superstep() == 0 {
		label := ctx.Id()
		ctx.ModifyVertexValue(strconv.FormatInt(label, 10))
		ctx.SendMessageToAllNeighbors(strconv.FormatInt(label, 10))
		ctx.VoteToHalt()
		return nil
	}
	cur, err := strconv.ParseInt(ctx.GetVertexValue(), 10, 64)
	if err != nil {
		cur = ctx.Id()
	}
	best := cur
	for _, m := range msgs {
		if l, err := strconv.ParseInt(m.Value, 10, 64); err == nil && l < best {
			best = l
		}
	}
	if best < cur {
		ctx.ModifyVertexValue(strconv.FormatInt(best, 10))
		ctx.SendMessageToAllNeighbors(strconv.FormatInt(best, 10))
	}
	ctx.VoteToHalt()
	return nil
}

// RunConnectedComponents resets the graph and returns each vertex's
// component label (the minimum id in its component).
func RunConnectedComponents(ctx context.Context, g *core.Graph, opts core.Options) (map[int64]int64, *core.RunStats, error) {
	if err := g.ResetForRun(func(int64) string { return "" }); err != nil {
		return nil, nil, err
	}
	stats, err := core.Run(ctx, g, ConnectedComponents{}, opts)
	if err != nil {
		return nil, nil, err
	}
	vals, err := g.VertexValues()
	if err != nil {
		return nil, nil, err
	}
	out := make(map[int64]int64, len(vals))
	for id, s := range vals {
		l, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			l = id
		}
		out[id] = l
	}
	return out, stats, nil
}
