package algorithms

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// loadDataset materializes a generated dataset into a fresh engine.
func loadDataset(t *testing.T, ds *dataset.Graph) *core.Graph {
	t.Helper()
	db := engine.New()
	g, err := core.CreateGraph(db, "eq")
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]core.Edge, len(ds.Edges))
	for i, e := range ds.Edges {
		edges[i] = core.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight, Type: e.Type, Created: e.Created}
	}
	if err := g.BulkLoad(nil, edges); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCachedInputEquivalence asserts the superstep input cache is
// invisible to results: for each algorithm, a cached run and a
// DisableInputCache run over the same graph must produce byte-identical
// vertex values.
func TestCachedInputEquivalence(t *testing.T) {
	ds := dataset.PreferentialAttachment("eq", 300, 3, 11)
	algos := []struct {
		name string
		run  func(g *core.Graph, opts core.Options) (*core.RunStats, error)
	}{
		{"pagerank", func(g *core.Graph, opts core.Options) (*core.RunStats, error) {
			_, stats, err := RunPageRank(context.Background(), g, 8, opts)
			return stats, err
		}},
		{"sssp", func(g *core.Graph, opts core.Options) (*core.RunStats, error) {
			_, stats, err := RunSSSP(context.Background(), g, 0, true, opts)
			return stats, err
		}},
		{"connectedcomponents", func(g *core.Graph, opts core.Options) (*core.RunStats, error) {
			_, stats, err := RunConnectedComponents(context.Background(), g, opts)
			return stats, err
		}},
	}
	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			vals := make([]map[int64]string, 2)
			steps := make([]int, 2)
			for i, disable := range []bool{false, true} {
				g := loadDataset(t, ds)
				stats, err := a.run(g, core.Options{Workers: 2, Partitions: 8, DisableInputCache: disable})
				if err != nil {
					t.Fatalf("disable=%v: %v", disable, err)
				}
				vals[i], err = g.VertexValues()
				if err != nil {
					t.Fatal(err)
				}
				steps[i] = stats.Supersteps
			}
			if steps[0] != steps[1] {
				t.Errorf("supersteps differ: cached=%d uncached=%d", steps[0], steps[1])
			}
			if len(vals[0]) != len(vals[1]) {
				t.Fatalf("vertex counts differ: %d vs %d", len(vals[0]), len(vals[1]))
			}
			diff := 0
			for id, v := range vals[1] {
				if vals[0][id] != v {
					diff++
					if diff <= 3 {
						t.Errorf("vertex %d: cached=%q uncached=%q", id, vals[0][id], v)
					}
				}
			}
			if diff > 0 {
				t.Fatalf("%d/%d vertex values differ between cached and uncached runs", diff, len(vals[1]))
			}
		})
	}
}
