package algorithms

import (
	"context"
	"sort"
	"strconv"

	"repro/internal/core"
)

// LabelPropagation detects communities: every vertex starts in its own
// community and repeatedly adopts the most frequent label among its
// neighbors (ties break to the smallest label, making runs
// deterministic). It is one of the "other message passing algorithms"
// the paper's introduction claims Vertexica expresses naturally, and a
// useful workload for the batching ablation (heavier per-vertex compute
// than PageRank).
type LabelPropagation struct {
	// MaxRounds bounds the number of adoption rounds (default 20;
	// label propagation is not guaranteed to converge).
	MaxRounds int
}

func (l *LabelPropagation) rounds() int {
	if l.MaxRounds <= 0 {
		return 20
	}
	return l.MaxRounds
}

// Compute implements core.VertexProgram.
func (l *LabelPropagation) Compute(ctx *core.VertexContext, msgs []core.Message) error {
	if ctx.Superstep() == 0 {
		label := strconv.FormatInt(ctx.Id(), 10)
		ctx.ModifyVertexValue(label)
		ctx.SendMessageToAllNeighbors(label)
		return nil
	}
	cur := ctx.GetVertexValue()
	next := mostFrequentLabel(msgs, cur)
	if next != cur {
		ctx.ModifyVertexValue(next)
	}
	if ctx.Superstep() >= l.rounds() {
		ctx.VoteToHalt()
		return nil
	}
	// Keep propagating while anything can still change; halting here
	// and waking on messages would lose the per-round framing.
	ctx.SendMessageToAllNeighbors(next)
	return nil
}

// mostFrequentLabel picks the modal label among the messages; ties go
// to the numerically smallest label, and an empty inbox keeps cur.
func mostFrequentLabel(msgs []core.Message, cur string) string {
	if len(msgs) == 0 {
		return cur
	}
	counts := make(map[string]int, len(msgs))
	for _, m := range msgs {
		counts[m.Value]++
	}
	// Deterministic scan order.
	labels := make([]string, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		a, _ := strconv.ParseInt(labels[i], 10, 64)
		b, _ := strconv.ParseInt(labels[j], 10, 64)
		return a < b
	})
	best, bestCount := cur, 0
	for _, l := range labels {
		if counts[l] > bestCount {
			best, bestCount = l, counts[l]
		}
	}
	return best
}

// RunLabelPropagation resets the graph and returns each vertex's final
// community label.
func RunLabelPropagation(ctx context.Context, g *core.Graph, maxRounds int, opts core.Options) (map[int64]int64, *core.RunStats, error) {
	if err := g.ResetForRun(func(int64) string { return "" }); err != nil {
		return nil, nil, err
	}
	stats, err := core.Run(ctx, g, &LabelPropagation{MaxRounds: maxRounds}, opts)
	if err != nil {
		return nil, nil, err
	}
	vals, err := g.VertexValues()
	if err != nil {
		return nil, nil, err
	}
	out := make(map[int64]int64, len(vals))
	for id, s := range vals {
		l, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			l = id
		}
		out[id] = l
	}
	return out, stats, nil
}
