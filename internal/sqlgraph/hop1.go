package sqlgraph

import (
	"fmt"

	"repro/internal/core"
)

// The 1-hop analyses of §3.2: queries over a vertex's immediate
// neighborhood that are awkward for vertex-centric execution (the
// neighborhood must first be gathered via messages) but natural in SQL
// as self-joins. All of them expect a symmetrized edge table (each
// undirected edge stored in both directions), which is how the paper's
// undirected SNAP graphs load.

// TriangleCount returns the number of distinct triangles using the
// classic ordered three-way self-join: a triangle (a < b < c) is
// counted once via edges (a,b), (b,c), (a,c).
func TriangleCount(g *core.Graph) (int64, error) {
	q := fmt.Sprintf(`SELECT COUNT(*) FROM %[1]s AS e1, %[1]s AS e2, %[1]s AS e3
		WHERE e1.dst = e2.src AND e2.dst = e3.dst AND e1.src = e3.src
		AND e1.src < e1.dst AND e2.src < e2.dst AND e3.src < e3.dst`,
		g.EdgeTable())
	v, err := g.DB.QueryScalar(q)
	if err != nil {
		return 0, fmt.Errorf("sqlgraph: triangle count: %w", err)
	}
	return v.I, nil
}

// TriangleCountPerNode returns, for every vertex with at least one
// triangle, the number of triangles it participates in.
func TriangleCountPerNode(g *core.Graph) (map[int64]int64, error) {
	q := fmt.Sprintf(`SELECT e1.src AS id, COUNT(*) AS tri
		FROM %[1]s AS e1
		JOIN %[1]s AS e2 ON e1.src = e2.src AND e1.dst < e2.dst
		JOIN %[1]s AS e3 ON e3.src = e1.dst AND e3.dst = e2.dst
		GROUP BY e1.src`, g.EdgeTable())
	rows, err := g.DB.Query(q)
	if err != nil {
		return nil, fmt.Errorf("sqlgraph: per-node triangles: %w", err)
	}
	out := make(map[int64]int64, rows.Len())
	for i := 0; i < rows.Len(); i++ {
		out[rows.Value(i, 0).I] = rows.Value(i, 1).I
	}
	return out, nil
}

// OverlapPair is a pair of vertices with their common-neighbor count.
type OverlapPair struct {
	A, B   int64
	Common int64
}

// StrongOverlap finds pairs of vertices sharing at least minCommon
// neighbors (§3.2 "Strong Overlap"), ordered by descending overlap.
func StrongOverlap(g *core.Graph, minCommon int64) ([]OverlapPair, error) {
	q := fmt.Sprintf(`SELECT e1.src AS a, e2.src AS b, COUNT(*) AS common
		FROM %[1]s AS e1 JOIN %[1]s AS e2 ON e1.dst = e2.dst AND e1.src < e2.src
		GROUP BY e1.src, e2.src
		HAVING COUNT(*) >= %d
		ORDER BY common DESC, a, b`, g.EdgeTable(), minCommon)
	rows, err := g.DB.Query(q)
	if err != nil {
		return nil, fmt.Errorf("sqlgraph: strong overlap: %w", err)
	}
	out := make([]OverlapPair, rows.Len())
	for i := range out {
		out[i] = OverlapPair{
			A:      rows.Value(i, 0).I,
			B:      rows.Value(i, 1).I,
			Common: rows.Value(i, 2).I,
		}
	}
	return out, nil
}

// WeakTie is a vertex bridging otherwise-disconnected neighbor pairs.
type WeakTie struct {
	ID    int64
	Pairs int64 // neighbor pairs not directly connected
}

// WeakTies finds vertices whose neighborhoods contain at least minPairs
// pairs of neighbors with no direct edge between them — the "bridges"
// of §3.2. Implemented as neighbor-pair enumeration anti-joined against
// the edge table.
func WeakTies(g *core.Graph, minPairs int64) ([]WeakTie, error) {
	q := fmt.Sprintf(`SELECT e1.src AS id, COUNT(*) AS pairs
		FROM %[1]s AS e1
		JOIN %[1]s AS e2 ON e1.src = e2.src AND e1.dst < e2.dst
		LEFT JOIN %[1]s AS e3 ON e3.src = e1.dst AND e3.dst = e2.dst
		WHERE e3.src IS NULL
		GROUP BY e1.src
		HAVING COUNT(*) >= %d
		ORDER BY pairs DESC, id`, g.EdgeTable(), minPairs)
	rows, err := g.DB.Query(q)
	if err != nil {
		return nil, fmt.Errorf("sqlgraph: weak ties: %w", err)
	}
	out := make([]WeakTie, rows.Len())
	for i := range out {
		out[i] = WeakTie{ID: rows.Value(i, 0).I, Pairs: rows.Value(i, 1).I}
	}
	return out, nil
}

// ClusteringCoefficients computes the local clustering coefficient of
// every vertex with degree ≥ 2: 2·tri(v) / (deg(v)·(deg(v)−1)).
func ClusteringCoefficients(g *core.Graph) (map[int64]float64, error) {
	tri, err := TriangleCountPerNode(g)
	if err != nil {
		return nil, err
	}
	rows, err := g.DB.Query(fmt.Sprintf(
		"SELECT src, COUNT(*) FROM %s GROUP BY src", g.EdgeTable()))
	if err != nil {
		return nil, err
	}
	out := make(map[int64]float64)
	for i := 0; i < rows.Len(); i++ {
		id := rows.Value(i, 0).I
		deg := rows.Value(i, 1).I
		if deg < 2 {
			continue
		}
		out[id] = 2 * float64(tri[id]) / float64(deg*(deg-1))
	}
	return out, nil
}

// MostClusteredVertex returns the vertex with the maximum local
// clustering coefficient — the hybrid-query source selector from §3.2
// ("shortest path from the most clustered node"). Ties break to the
// smaller id.
func MostClusteredVertex(g *core.Graph) (int64, float64, error) {
	ccs, err := ClusteringCoefficients(g)
	if err != nil {
		return 0, 0, err
	}
	if len(ccs) == 0 {
		return 0, 0, fmt.Errorf("sqlgraph: no vertex has degree >= 2")
	}
	bestID, bestCC := int64(-1), -1.0
	for id, cc := range ccs {
		if cc > bestCC || (cc == bestCC && id < bestID) {
			bestID, bestCC = id, cc
		}
	}
	return bestID, bestCC, nil
}

// GlobalClusteringCoefficient is 3·triangles / open+closed wedges.
func GlobalClusteringCoefficient(g *core.Graph) (float64, error) {
	tris, err := TriangleCount(g)
	if err != nil {
		return 0, err
	}
	wedges, err := g.DB.QueryScalar(fmt.Sprintf(
		`SELECT SUM(d.deg * (d.deg - 1)) / 2.0 FROM
		 (SELECT src, COUNT(*) AS deg FROM %s GROUP BY src) AS d`, g.EdgeTable()))
	if err != nil {
		return 0, err
	}
	if wedges.Null || wedges.AsFloat() == 0 {
		return 0, nil
	}
	return 3 * float64(tris) / wedges.AsFloat(), nil
}
