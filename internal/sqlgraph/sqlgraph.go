// Package sqlgraph contains the hand-coded, hand-optimized SQL
// implementations of graph algorithms — the "Vertexica (SQL)" system of
// the paper's Figure 2 and the five SQL graph algorithms of its toolbar
// (PageRank, shortest paths, triangle counting, strong overlap, weak
// ties), plus connected components and clustering coefficients used by
// the hybrid queries.
//
// Each iterative algorithm is a small Go driver that ping-pongs two
// scratch tables with pure SQL per iteration; the scan/join/aggregate
// work all happens inside the relational engine on typed DOUBLE/INTEGER
// columns, which is why this path outperforms the string-codec vertex
// path, as in the paper.
package sqlgraph

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// infDist is the sentinel for "unreached" in SQL shortest paths (keeps
// the relaxation joins NULL-free, which is both simpler and faster).
const infDist = 1.0e18

// cleanup drops scratch tables, ignoring errors for missing ones. It
// survives the caller's cancellation (scratch tables must go away even
// when the run was cancelled) but keeps the context's values — in
// particular the write-gate marker, so a cleanup issued under the
// facade's gate does not try to re-acquire it.
func cleanup(ctx context.Context, db *engine.DB, names ...string) {
	ctx = context.WithoutCancel(ctx)
	for _, n := range names {
		_, _ = db.ExecContext(ctx, "DROP TABLE IF EXISTS "+n)
	}
}

// PageRank computes ranks with pure SQL: a degree table, then per
// iteration one join-aggregate that gathers rank/outdeg contributions
// along edges, left-joined back to the vertex set so rankless vertices
// keep the teleport mass. Conventions match algorithms.PageRank exactly
// (damping 0.85 unless overridden, no dangling redistribution).
// Cancelling ctx aborts between statements and inside each statement's
// executor (per result batch).
func PageRank(ctx context.Context, g *core.Graph, iterations int, damping float64) (map[int64]float64, error) {
	db := g.DB
	if damping == 0 {
		damping = 0.85
	}
	n, err := g.NumVertices()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return map[int64]float64{}, nil
	}
	pra := g.Name + "_sqlpr_a"
	prb := g.Name + "_sqlpr_b"
	deg := g.Name + "_sqlpr_deg"
	cleanup(ctx, db, pra, prb, deg)
	defer cleanup(ctx, db, pra, prb, deg)

	stmts := []string{
		fmt.Sprintf("CREATE TABLE %s (id INTEGER NOT NULL, rank DOUBLE NOT NULL)", pra),
		fmt.Sprintf("CREATE TABLE %s (id INTEGER NOT NULL, rank DOUBLE NOT NULL)", prb),
		fmt.Sprintf("CREATE TABLE %s (id INTEGER NOT NULL, deg INTEGER NOT NULL)", deg),
		fmt.Sprintf("INSERT INTO %s SELECT src, COUNT(*) FROM %s GROUP BY src", deg, g.EdgeTable()),
		fmt.Sprintf("INSERT INTO %s SELECT id, 1.0 / %d FROM %s", pra, n, g.VertexTable()),
	}
	for _, s := range stmts {
		if _, err := db.ExecContext(ctx, s); err != nil {
			return nil, fmt.Errorf("sqlgraph: pagerank setup: %w", err)
		}
	}

	cur, next := pra, prb
	for it := 0; it < iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		step := fmt.Sprintf(`INSERT INTO %[1]s
			SELECT v.id, %[4]g / %[5]d + %[6]g * COALESCE(s.acc, 0.0)
			FROM %[2]s AS v LEFT JOIN (
				SELECT e.dst AS id, SUM(p.rank / d.deg) AS acc
				FROM %[3]s AS e
				JOIN %[7]s AS p ON e.src = p.id
				JOIN %[8]s AS d ON e.src = d.id
				GROUP BY e.dst
			) AS s ON v.id = s.id`,
			next, g.VertexTable(), g.EdgeTable(), 1-damping, n, damping, cur, deg)
		if _, err := db.ExecContext(ctx, step); err != nil {
			return nil, fmt.Errorf("sqlgraph: pagerank iteration %d: %w", it, err)
		}
		if _, err := db.ExecContext(ctx, "TRUNCATE "+cur); err != nil {
			return nil, err
		}
		cur, next = next, cur
	}
	return readFloatMap(ctx, db, fmt.Sprintf("SELECT id, rank FROM %s", cur))
}

// ShortestPaths computes single-source shortest distances via iterated
// SQL relaxation: each round joins the frontier distances with the edge
// table, takes the per-destination MIN, and keeps the smaller of old
// and new. It stops at the first round with no improvement. Unreachable
// vertices are absent from the result map. Cancelling ctx aborts
// between and inside iterations.
func ShortestPaths(ctx context.Context, g *core.Graph, source int64, unitWeights bool) (map[int64]float64, error) {
	db := g.DB
	da := g.Name + "_sqlsp_a"
	dbl := g.Name + "_sqlsp_b"
	cleanup(ctx, db, da, dbl)
	defer cleanup(ctx, db, da, dbl)

	weightExpr := "CASE WHEN e.weight IS NULL OR e.weight <= 0.0 THEN 1.0 ELSE e.weight END"
	if unitWeights {
		weightExpr = "1.0"
	}

	stmts := []string{
		fmt.Sprintf("CREATE TABLE %s (id INTEGER NOT NULL, dist DOUBLE NOT NULL)", da),
		fmt.Sprintf("CREATE TABLE %s (id INTEGER NOT NULL, dist DOUBLE NOT NULL)", dbl),
		fmt.Sprintf("INSERT INTO %s SELECT id, CASE WHEN id = %d THEN 0.0 ELSE %g END FROM %s",
			da, source, infDist, g.VertexTable()),
	}
	for _, s := range stmts {
		if _, err := db.ExecContext(ctx, s); err != nil {
			return nil, fmt.Errorf("sqlgraph: sssp setup: %w", err)
		}
	}

	cur, next := da, dbl
	maxIters, err := g.NumVertices()
	if err != nil {
		return nil, err
	}
	for it := int64(0); it <= maxIters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		step := fmt.Sprintf(`INSERT INTO %[1]s
			SELECT c.id, CASE WHEN m.nd IS NULL OR c.dist <= m.nd THEN c.dist ELSE m.nd END
			FROM %[2]s AS c LEFT JOIN (
				SELECT e.dst AS id, MIN(f.dist + %[4]s) AS nd
				FROM %[3]s AS e JOIN %[2]s AS f ON e.src = f.id
				WHERE f.dist < %[5]g
				GROUP BY e.dst
			) AS m ON c.id = m.id`,
			next, cur, g.EdgeTable(), weightExpr, infDist)
		if _, err := db.ExecContext(ctx, step); err != nil {
			return nil, fmt.Errorf("sqlgraph: sssp iteration %d: %w", it, err)
		}
		improved, err := db.QueryScalarContext(ctx, fmt.Sprintf(
			"SELECT COUNT(*) FROM %s AS n JOIN %s AS c ON n.id = c.id WHERE n.dist < c.dist", next, cur))
		if err != nil {
			return nil, err
		}
		if _, err := db.ExecContext(ctx, "TRUNCATE "+cur); err != nil {
			return nil, err
		}
		cur, next = next, cur
		if improved.I == 0 {
			break
		}
	}
	all, err := readFloatMap(ctx, db, fmt.Sprintf("SELECT id, dist FROM %s WHERE dist < %g", cur, infDist))
	if err != nil {
		return nil, err
	}
	return all, nil
}

// ConnectedComponents labels vertices with the minimum reachable id via
// iterated SQL label propagation (expects a symmetrized edge table for
// weak connectivity, like the vertex-centric version). Cancelling ctx
// aborts between and inside iterations.
func ConnectedComponents(ctx context.Context, g *core.Graph) (map[int64]int64, error) {
	db := g.DB
	la := g.Name + "_sqlcc_a"
	lb := g.Name + "_sqlcc_b"
	cleanup(ctx, db, la, lb)
	defer cleanup(ctx, db, la, lb)

	stmts := []string{
		fmt.Sprintf("CREATE TABLE %s (id INTEGER NOT NULL, label INTEGER NOT NULL)", la),
		fmt.Sprintf("CREATE TABLE %s (id INTEGER NOT NULL, label INTEGER NOT NULL)", lb),
		fmt.Sprintf("INSERT INTO %s SELECT id, id FROM %s", la, g.VertexTable()),
	}
	for _, s := range stmts {
		if _, err := db.ExecContext(ctx, s); err != nil {
			return nil, fmt.Errorf("sqlgraph: wcc setup: %w", err)
		}
	}
	cur, next := la, lb
	maxIters, err := g.NumVertices()
	if err != nil {
		return nil, err
	}
	for it := int64(0); it <= maxIters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		step := fmt.Sprintf(`INSERT INTO %[1]s
			SELECT c.id, CASE WHEN m.nl IS NULL OR c.label <= m.nl THEN c.label ELSE m.nl END
			FROM %[2]s AS c LEFT JOIN (
				SELECT e.dst AS id, MIN(l.label) AS nl
				FROM %[3]s AS e JOIN %[2]s AS l ON e.src = l.id
				GROUP BY e.dst
			) AS m ON c.id = m.id`,
			next, cur, g.EdgeTable())
		if _, err := db.ExecContext(ctx, step); err != nil {
			return nil, fmt.Errorf("sqlgraph: wcc iteration %d: %w", it, err)
		}
		improved, err := db.QueryScalarContext(ctx, fmt.Sprintf(
			"SELECT COUNT(*) FROM %s AS n JOIN %s AS c ON n.id = c.id WHERE n.label < c.label", next, cur))
		if err != nil {
			return nil, err
		}
		if _, err := db.ExecContext(ctx, "TRUNCATE "+cur); err != nil {
			return nil, err
		}
		cur, next = next, cur
		if improved.I == 0 {
			break
		}
	}
	rows, err := db.QueryContext(ctx, fmt.Sprintf("SELECT id, label FROM %s", cur))
	if err != nil {
		return nil, err
	}
	out := make(map[int64]int64, rows.Len())
	for i := 0; i < rows.Len(); i++ {
		out[rows.Value(i, 0).I] = rows.Value(i, 1).I
	}
	return out, nil
}

// readFloatMap materializes an (id, float) query into a map.
func readFloatMap(ctx context.Context, db *engine.DB, q string) (map[int64]float64, error) {
	rows, err := db.QueryContext(ctx, q)
	if err != nil {
		return nil, err
	}
	out := make(map[int64]float64, rows.Len())
	for i := 0; i < rows.Len(); i++ {
		id := rows.Value(i, 0)
		v := rows.Value(i, 1)
		if id.Null || v.Null {
			continue
		}
		out[id.I] = v.AsFloat()
	}
	return out, nil
}
