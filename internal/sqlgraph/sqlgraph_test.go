package sqlgraph

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/engine"
)

func directedGraph(t *testing.T) *core.Graph {
	t.Helper()
	db := engine.New()
	g, err := core.CreateGraph(db, "d")
	if err != nil {
		t.Fatal(err)
	}
	edges := []core.Edge{
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 1, Dst: 3, Weight: 4},
		{Src: 2, Dst: 3, Weight: 1},
		{Src: 3, Dst: 1, Weight: 2},
		{Src: 4, Dst: 3, Weight: 1},
	}
	if err := g.BulkLoad(nil, edges); err != nil {
		t.Fatal(err)
	}
	return g
}

// undirectedGraph builds a symmetrized graph: square 1-2-3-4 plus
// diagonal 1-3, and a pendant 5-1.
func undirectedGraph(t *testing.T) *core.Graph {
	t.Helper()
	db := engine.New()
	g, err := core.CreateGraph(db, "u")
	if err != nil {
		t.Fatal(err)
	}
	und := [][2]int64{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {1, 3}, {5, 1}}
	var edges []core.Edge
	for _, e := range und {
		edges = append(edges,
			core.Edge{Src: e[0], Dst: e[1], Weight: 1},
			core.Edge{Src: e[1], Dst: e[0], Weight: 1})
	}
	if err := g.BulkLoad(nil, edges); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSQLPageRankMatchesVertexCentric is the headline cross-system
// property: the hand-tuned SQL path and the vertex-centric path compute
// identical ranks.
func TestSQLPageRankMatchesVertexCentric(t *testing.T) {
	g := directedGraph(t)
	want, _, err := algorithms.RunPageRank(context.Background(), g, 10, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := PageRank(context.Background(), g, 10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rank cardinality: sql=%d vertex=%d", len(got), len(want))
	}
	for id, w := range want {
		if math.Abs(got[id]-w) > 1e-9 {
			t.Errorf("rank(%d): sql=%.12f vertex=%.12f", id, got[id], w)
		}
	}
}

func TestSQLPageRankOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		db := engine.New()
		g, err := core.CreateGraph(db, "r")
		if err != nil {
			t.Fatal(err)
		}
		seen := map[[2]int64]bool{}
		var edges []core.Edge
		for len(edges) < 60 {
			a, b := int64(rng.Intn(20)), int64(rng.Intn(20))
			if a == b || seen[[2]int64{a, b}] {
				continue
			}
			seen[[2]int64{a, b}] = true
			edges = append(edges, core.Edge{Src: a, Dst: b, Weight: 1})
		}
		if err := g.BulkLoad(nil, edges); err != nil {
			t.Fatal(err)
		}
		want, _, err := algorithms.RunPageRank(context.Background(), g, 6, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := PageRank(context.Background(), g, 6, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		for id, w := range want {
			if math.Abs(got[id]-w) > 1e-9 {
				t.Fatalf("trial %d rank(%d): sql=%.12f vertex=%.12f", trial, id, got[id], w)
			}
		}
	}
}

func TestSQLShortestPathsMatchesVertexCentric(t *testing.T) {
	for _, unit := range []bool{false, true} {
		g := directedGraph(t)
		want, _, err := algorithms.RunSSSP(context.Background(), g, 1, unit, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ShortestPaths(context.Background(), g, 1, unit)
		if err != nil {
			t.Fatal(err)
		}
		for id, w := range want {
			if math.IsInf(w, 1) {
				if _, ok := got[id]; ok {
					t.Errorf("unit=%v: vertex %d should be unreachable in SQL result", unit, id)
				}
				continue
			}
			if got[id] != w {
				t.Errorf("unit=%v dist(%d): sql=%v vertex=%v", unit, id, got[id], w)
			}
		}
	}
}

func TestSQLConnectedComponentsMatchesVertexCentric(t *testing.T) {
	g := undirectedGraph(t)
	want, _, err := algorithms.RunConnectedComponents(context.Background(), g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ConnectedComponents(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	for id, w := range want {
		if got[id] != w {
			t.Errorf("label(%d): sql=%d vertex=%d", id, got[id], w)
		}
	}
}

// bruteTriangles is the oracle: enumerate all vertex triples.
func bruteTriangles(und [][2]int64) int64 {
	adj := map[[2]int64]bool{}
	nodes := map[int64]bool{}
	for _, e := range und {
		adj[[2]int64{e[0], e[1]}] = true
		adj[[2]int64{e[1], e[0]}] = true
		nodes[e[0]], nodes[e[1]] = true, true
	}
	var ids []int64
	for n := range nodes {
		ids = append(ids, n)
	}
	var count int64
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			for k := j + 1; k < len(ids); k++ {
				if adj[[2]int64{ids[i], ids[j]}] && adj[[2]int64{ids[j], ids[k]}] && adj[[2]int64{ids[i], ids[k]}] {
					count++
				}
			}
		}
	}
	return count
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	g := undirectedGraph(t)
	got, err := TriangleCount(g)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteTriangles([][2]int64{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {1, 3}, {5, 1}})
	if got != want {
		t.Errorf("triangles = %d, want %d", got, want)
	}
}

func TestTriangleCountRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		var und [][2]int64
		seen := map[[2]int64]bool{}
		for len(und) < 25 {
			a, b := int64(rng.Intn(12)), int64(rng.Intn(12))
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int64{a, b}] {
				continue
			}
			seen[[2]int64{a, b}] = true
			und = append(und, [2]int64{a, b})
		}
		db := engine.New()
		g, _ := core.CreateGraph(db, "rt")
		var edges []core.Edge
		for _, e := range und {
			edges = append(edges,
				core.Edge{Src: e[0], Dst: e[1]}, core.Edge{Src: e[1], Dst: e[0]})
		}
		if err := g.BulkLoad(nil, edges); err != nil {
			t.Fatal(err)
		}
		got, err := TriangleCount(g)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteTriangles(und); got != want {
			t.Fatalf("trial %d: triangles = %d, want %d", trial, got, want)
		}
	}
}

func TestTriangleCountPerNode(t *testing.T) {
	g := undirectedGraph(t)
	got, err := TriangleCountPerNode(g)
	if err != nil {
		t.Fatal(err)
	}
	// Triangles: {1,2,3} and {1,3,4}. Vertex 1 and 3 in 2 each; 2 and 4 in 1.
	want := map[int64]int64{1: 2, 2: 1, 3: 2, 4: 1}
	for id, w := range want {
		if got[id] != w {
			t.Errorf("tri(%d) = %d, want %d", id, got[id], w)
		}
	}
	if _, ok := got[5]; ok {
		t.Error("vertex 5 participates in no triangle")
	}
}

func TestStrongOverlap(t *testing.T) {
	g := undirectedGraph(t)
	pairs, err := StrongOverlap(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Neighbors: 1:{2,3,4,5} 2:{1,3} 3:{1,2,4} 4:{1,3} 5:{1}.
	// Common ≥2: (2,4): {1,3} = 2; (1,3): {2,4} = 2.
	found := map[[2]int64]int64{}
	for _, p := range pairs {
		found[[2]int64{p.A, p.B}] = p.Common
	}
	if found[[2]int64{2, 4}] != 2 || found[[2]int64{1, 3}] != 2 {
		t.Errorf("overlap pairs wrong: %v", found)
	}
	if len(pairs) != 2 {
		t.Errorf("got %d pairs, want 2: %v", len(pairs), pairs)
	}
}

func TestWeakTies(t *testing.T) {
	g := undirectedGraph(t)
	ties, err := WeakTies(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 1 neighbors {2,3,4,5}: pairs (2,4),(2,5),(3,5),(4,5) are
	// disconnected → 4 open pairs. Vertex 3 neighbors {1,2,4}: (2,4)
	// disconnected → 1.
	got := map[int64]int64{}
	for _, w := range ties {
		got[w.ID] = w.Pairs
	}
	if got[1] != 4 {
		t.Errorf("weak ties at 1 = %d, want 4", got[1])
	}
	if got[3] != 1 {
		t.Errorf("weak ties at 3 = %d, want 1", got[3])
	}
	if _, ok := got[5]; ok {
		t.Error("degree-1 vertex cannot be a weak tie")
	}
}

func TestClusteringCoefficients(t *testing.T) {
	g := undirectedGraph(t)
	ccs, err := ClusteringCoefficients(g)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 2: deg 2, tri 1 → cc = 1. Vertex 1: deg 4, tri 2 → 2*2/12 = 1/3.
	if math.Abs(ccs[2]-1.0) > 1e-12 {
		t.Errorf("cc(2) = %v, want 1", ccs[2])
	}
	if math.Abs(ccs[1]-1.0/3.0) > 1e-12 {
		t.Errorf("cc(1) = %v, want 1/3", ccs[1])
	}
	id, cc, err := MostClusteredVertex(g)
	if err != nil {
		t.Fatal(err)
	}
	if cc != 1.0 || (id != 2 && id != 4) {
		t.Errorf("most clustered = %d (%.3f), want 2 or 4 with 1.0", id, cc)
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	g := undirectedGraph(t)
	gcc, err := GlobalClusteringCoefficient(g)
	if err != nil {
		t.Fatal(err)
	}
	// 2 triangles; wedges = Σ deg(v)(deg(v)-1)/2 = (4·3 + 2·1 + 3·2 + 2·1 + 1·0)/2 = 11.
	want := 3.0 * 2.0 / 11.0
	if math.Abs(gcc-want) > 1e-12 {
		t.Errorf("gcc = %v, want %v", gcc, want)
	}
}

func TestSQLScratchTablesCleanedUp(t *testing.T) {
	g := directedGraph(t)
	if _, err := PageRank(context.Background(), g, 3, 0.85); err != nil {
		t.Fatal(err)
	}
	for _, n := range g.DB.Catalog().Names() {
		switch n {
		case g.VertexTable(), g.EdgeTable(), g.MessageTable():
		default:
			t.Errorf("scratch table %s left behind", n)
		}
	}
}
