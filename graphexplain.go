package vertexica

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlgraph"
)

// explainGraphVerb is the hook the facade installs into the engine with
// SetGraphExplainer: it gives `EXPLAIN [ANALYZE] pagerank g 10` a
// renderer without the engine package importing the graph runtime. The
// verb names and argv shape mirror the server's graph-verb RPC exactly
// (server/verbs.go), so what EXPLAIN describes is what the wire verb
// runs. ANALYZE executes the verb for real and folds the run's
// statistics into the output.
//
// The hook is invoked from inside a session's statement execution —
// possibly the facade's own default session, whose sessionMu the caller
// already holds — so ANALYZE must not dispatch through the public Graph
// methods (their runGated touches sessionMu and would self-deadlock).
// It takes only the engine's cross-session write gate; the in-
// transaction case is refused by the engine before the hook runs.
func (e *Engine) explainGraphVerb(ctx context.Context, analyze bool, verb string, args []string, workers int) ([]string, error) {
	argN := func(i int, def int64) int64 {
		if i < len(args) {
			if v, err := strconv.ParseInt(args[i], 10, 64); err == nil {
				return v
			}
		}
		return def
	}
	// SQL identifiers cannot contain "-", so the -sql verb variants are
	// spelled with an underscore in EXPLAIN (EXPLAIN PAGERANK_SQL g);
	// the wire RPC keeps its historical dashed names.
	verb = strings.ReplaceAll(verb, "_", "-")
	if len(args) < 1 || args[0] == "" {
		return nil, fmt.Errorf("vertexica: EXPLAIN %s wants a graph name", verb)
	}
	g, err := core.OpenGraph(e.db, args[0])
	if err != nil {
		return nil, err
	}
	opts := Options{Workers: workers}

	// gated acquires the engine write gate for an ANALYZE run, exactly
	// like runGated minus the default-session bookkeeping (see above).
	gated := func(fn func(ctx context.Context) error) error {
		if engine.GateHeld(ctx) {
			return fn(ctx)
		}
		if err := e.db.AcquireWriteGate(ctx); err != nil {
			return err
		}
		defer e.db.ReleaseWriteGate()
		return fn(engine.WithGateHeld(ctx))
	}

	switch verb {
	case "pagerank":
		iters := int(argN(1, 10))
		lines, err := core.ExplainRun(g, fmt.Sprintf("pagerank iterations=%d", iters), opts)
		if err != nil || !analyze {
			return lines, err
		}
		var ranks map[int64]float64
		var rs *RunStats
		if err := gated(func(ctx context.Context) error {
			ranks, rs, err = algorithms.RunPageRank(ctx, g, iters, opts)
			return err
		}); err != nil {
			return nil, err
		}
		lines = append(lines, core.ExplainStats(rs)...)
		return append(lines, resultLine(len(ranks))), nil

	case "sssp":
		source, unit := argN(1, 0), argN(2, 0) != 0
		lines, err := core.ExplainRun(g, fmt.Sprintf("sssp source=%d unit_weights=%v", source, unit), opts)
		if err != nil || !analyze {
			return lines, err
		}
		var dists map[int64]float64
		var rs *RunStats
		if err := gated(func(ctx context.Context) error {
			dists, rs, err = algorithms.RunSSSP(ctx, g, source, unit, opts)
			return err
		}); err != nil {
			return nil, err
		}
		lines = append(lines, core.ExplainStats(rs)...)
		return append(lines, resultLine(len(dists))), nil

	case "components":
		lines, err := core.ExplainRun(g, "components", opts)
		if err != nil || !analyze {
			return lines, err
		}
		var labels map[int64]int64
		var rs *RunStats
		if err := gated(func(ctx context.Context) error {
			labels, rs, err = algorithms.RunConnectedComponents(ctx, g, opts)
			return err
		}); err != nil {
			return nil, err
		}
		lines = append(lines, core.ExplainStats(rs)...)
		return append(lines, resultLine(len(labels))), nil

	case "pagerank-sql":
		iters := int(argN(1, 10))
		lines, err := core.ExplainSQL(g, fmt.Sprintf("pagerank iterations=%d", iters), iters)
		if err != nil || !analyze {
			return lines, err
		}
		var ranks map[int64]float64
		if err := gated(func(ctx context.Context) error {
			ranks, err = sqlgraph.PageRank(ctx, g, iters, 0.85)
			return err
		}); err != nil {
			return nil, err
		}
		return append(lines, resultLine(len(ranks))), nil

	case "sssp-sql":
		source, unit := argN(1, 0), argN(2, 0) != 0
		lines, err := core.ExplainSQL(g, fmt.Sprintf("sssp source=%d unit_weights=%v", source, unit), 0)
		if err != nil || !analyze {
			return lines, err
		}
		var dists map[int64]float64
		if err := gated(func(ctx context.Context) error {
			dists, err = sqlgraph.ShortestPaths(ctx, g, source, unit)
			return err
		}); err != nil {
			return nil, err
		}
		return append(lines, resultLine(len(dists))), nil

	case "components-sql":
		lines, err := core.ExplainSQL(g, "components", 0)
		if err != nil || !analyze {
			return lines, err
		}
		var labels map[int64]int64
		if err := gated(func(ctx context.Context) error {
			labels, err = sqlgraph.ConnectedComponents(ctx, g)
			return err
		}); err != nil {
			return nil, err
		}
		return append(lines, resultLine(len(labels))), nil

	case "triangles":
		nv, err := g.NumVertices()
		if err != nil {
			return nil, err
		}
		ne, err := g.NumEdges()
		if err != nil {
			return nil, err
		}
		lines := []string{
			fmt.Sprintf("triangles on graph %q (one-shot SQL)", g.Name),
			fmt.Sprintf("  graph: %d vertices, %d edges", nv, ne),
			"  plan: self-join the edge table on shared endpoints, count closing edges",
		}
		if !analyze {
			return lines, nil
		}
		n, err := sqlgraph.TriangleCount(g)
		if err != nil {
			return nil, err
		}
		return append(lines, fmt.Sprintf("  executed: triangles=%d", n)), nil
	}
	return nil, fmt.Errorf("vertexica: EXPLAIN does not support graph verb %q", verb)
}

func resultLine(rows int) string {
	return fmt.Sprintf("  result: %d rows", rows)
}
