package vertexica

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/giraph"
	"repro/internal/graphdb"
)

func smallSocial(t *testing.T) (*Engine, *Graph) {
	t.Helper()
	vx := New()
	ds := MakeUndirected(ErdosRenyi("social", 40, 120, 77))
	g, err := vx.LoadDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	return vx, g
}

func TestQuickstartFlow(t *testing.T) {
	vx, g := smallSocial(t)
	nv, _ := g.NumVertices()
	if nv != 40 {
		t.Fatalf("vertices = %d", nv)
	}
	ranks, stats, err := g.PageRank(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 40 || stats.Supersteps == 0 {
		t.Fatal("pagerank did not run")
	}
	rows, n, err := vx.SQL("SELECT COUNT(*) FROM social_edge WHERE weight > 5.0")
	if err != nil || n != 1 {
		t.Fatalf("sql: %v", err)
	}
	if rows.Value(0, 0).I <= 0 {
		t.Error("metadata weights missing")
	}
}

// TestFourSystemAgreement is the reproduction's keystone: all four
// Figure 2 systems compute the same PageRank and SSSP answers on the
// same graph.
func TestFourSystemAgreement(t *testing.T) {
	ds := ErdosRenyi("agree", 60, 240, 123)
	ctx := context.Background()

	vx := New()
	g, err := vx.LoadDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	prVertex, _, err := g.PageRank(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	prSQL, err := g.PageRankSQL(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}

	ge := giraph.New(giraph.Config{SuperstepOverhead: -1})
	for v := int64(0); v < ds.Nodes; v++ {
		ge.AddVertex(v)
	}
	for _, e := range ds.Edges {
		ge.AddEdge(e.Src, e.Dst, e.Weight)
	}
	prGiraph, _, err := giraph.PageRank(ge, 8)
	if err != nil {
		t.Fatal(err)
	}

	store := graphdb.New()
	rows := make([][3]float64, len(ds.Edges))
	for i, e := range ds.Edges {
		rows[i] = [3]float64{float64(e.Src), float64(e.Dst), e.Weight}
	}
	if err := store.Load(rows); err != nil {
		t.Fatal(err)
	}
	prGDB, err := graphdb.PageRank(store, 8, 0.85)
	if err != nil {
		t.Fatal(err)
	}

	for id, want := range prVertex {
		for sys, got := range map[string]float64{
			"sql": prSQL[id], "giraph": prGiraph[id], "graphdb": prGDB[id],
		} {
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("pagerank(%d) %s=%.12f vertex=%.12f", id, sys, got, want)
			}
		}
	}

	// SSSP agreement.
	src := ds.MaxOutDegreeNode()
	dVertex, _, err := g.ShortestPaths(ctx, src, false)
	if err != nil {
		t.Fatal(err)
	}
	dSQL, err := g.ShortestPathsSQL(ctx, src, false)
	if err != nil {
		t.Fatal(err)
	}
	dGiraph, _, err := giraph.SSSP(ge, src, false)
	if err != nil {
		t.Fatal(err)
	}
	dGDB, err := graphdb.ShortestPaths(store, src, false)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range dVertex {
		if math.IsInf(want, 1) {
			if _, ok := dSQL[id]; ok {
				t.Errorf("sssp(%d): sql should omit unreachable", id)
			}
			continue
		}
		if math.Abs(dSQL[id]-want) > 1e-9 || math.Abs(dGiraph[id]-want) > 1e-9 || math.Abs(dGDB[id]-want) > 1e-9 {
			t.Errorf("sssp(%d): vertex=%v sql=%v giraph=%v graphdb=%v",
				id, want, dSQL[id], dGiraph[id], dGDB[id])
		}
	}
}

func TestHybridQueries(t *testing.T) {
	_, g := smallSocial(t)
	ctx := context.Background()
	bridges, err := g.ImportantBridges(ctx, 1, 0.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bridges) == 0 {
		t.Error("random graph should have some bridges at threshold 0")
	}
	src, dists, err := g.ShortestPathsFromMostClustered(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if dists[src] != 0 {
		t.Errorf("source distance = %v", dists[src])
	}
	marks, err := g.NearOrImportant(ctx, src, 1, 0.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if marks[src] != "near+important" {
		t.Errorf("source should be near+important, got %q", marks[src])
	}
}

func TestTemporalFacade(t *testing.T) {
	vx := New()
	g, err := vx.CreateGraph("tg")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][4]int64{{1, 2, 0, 100}, {2, 1, 0, 100}, {2, 3, 0, 200}, {3, 2, 0, 200}} {
		if err := g.AddVertexIfMissing(row[0]); err != nil {
			t.Fatal(err)
		}
		if err := g.AddVertexIfMissing(row[1]); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(row[0], row[1], 1, "friend", row[3]); err != nil {
			t.Fatal(err)
		}
	}
	series, err := g.ShortestPathTimeSeries(context.Background(), []int64{150, 250}, 1)
	if err != nil {
		t.Fatal(err)
	}
	closer := CloserPairs(series.Scores[0], series.Scores[1], 1)
	found := false
	for _, d := range closer {
		if d.ID == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("vertex 3 should have come closer: %v", closer)
	}

	mon := g.NewPageRankMonitor(3)
	if _, err := mon.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	deltas, err := mon.ApplyAndRerun(context.Background(),
		"INSERT INTO tg_vertex VALUES (9, '', FALSE)",
		"INSERT INTO tg_edge VALUES (3, 9, 1.0, 'friend', 300), (9, 3, 1.0, 'friend', 300)")
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) == 0 {
		t.Error("mutation should change ranks")
	}
}

func TestSnapshotFacade(t *testing.T) {
	vx, g := smallSocial(t)
	snap, err := g.Snapshot("asof", 1240768000)
	if err != nil {
		t.Fatal(err)
	}
	ne, _ := snap.NumEdges()
	all, _ := g.NumEdges()
	if ne >= all {
		t.Errorf("snapshot should filter some edges: %d vs %d", ne, all)
	}
	if err := vx.DropGraph("asof"); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionsFacade(t *testing.T) {
	vx, g := smallSocial(t)
	before, _ := g.NumEdges()
	if err := vx.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := vx.SQL("DELETE FROM social_edge"); err != nil {
		t.Fatal(err)
	}
	if err := vx.Rollback(); err != nil {
		t.Fatal(err)
	}
	after, _ := g.NumEdges()
	if after != before {
		t.Errorf("rollback lost edges: %d vs %d", after, before)
	}
}

func TestCollaborativeFilteringFacade(t *testing.T) {
	vx := New()
	g, err := vx.CreateGraph("cf")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{1, 2, 101, 102} {
		if err := g.AddVertex(id, ""); err != nil {
			t.Fatal(err)
		}
	}
	pairs := [][3]float64{{1, 101, 5}, {1, 102, 1}, {2, 101, 4}}
	for _, p := range pairs {
		u, it, r := int64(p[0]), int64(p[1]), p[2]
		if err := g.AddEdge(u, it, r, "rated", 0); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(it, u, r, "rated", 0); err != nil {
			t.Fatal(err)
		}
	}
	vecs, _, err := g.CollaborativeFiltering(context.Background(), 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	hi, _ := PredictRating(vecs, 1, 101)
	lo, _ := PredictRating(vecs, 1, 102)
	if hi <= lo {
		t.Errorf("CF preference order lost: %.3f <= %.3f", hi, lo)
	}
}

func TestFig2ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("shape check runs all four systems")
	}
	rows, err := bench.RunFig2(context.Background(), "pagerank", bench.Fig2Config{
		Scale:            0.004,
		PageRankIters:    5,
		GraphDBEdgeLimit: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bench.CheckFig2Shape(rows) {
		t.Errorf("figure-2 shape violated: %s", v)
	}
}

func TestMetadataLoad(t *testing.T) {
	vx := New()
	ds := ErdosRenyi("meta", 25, 50, 5)
	if _, err := vx.LoadDatasetWithMetadata(ds, 42); err != nil {
		t.Fatal(err)
	}
	rows, _, err := vx.SQL("SELECT COUNT(*) FROM meta_vertex_meta WHERE z0 >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Value(0, 0).I != 25 {
		t.Errorf("metadata rows = %v", rows.Value(0, 0))
	}
}

func TestUDFFacade(t *testing.T) {
	vx, _ := smallSocial(t)
	err := vx.RegisterUDF(&ScalarFunc{
		Name: "half", MinArgs: 1, MaxArgs: 1,
		ReturnType: func(args []Type) (Type, error) { return TypeFloat64, nil },
		Eval: func(a []Value) (Value, error) {
			if a[0].Null {
				return a[0], nil
			}
			return Float64Value(a[0].AsFloat() / 2), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := vx.SQL("SELECT HALF(8.0)")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Value(0, 0).F != 4 {
		t.Errorf("udf = %v", rows.Value(0, 0))
	}
}

// TestGraphRunGatedAgainstTxn: a graph-algorithm run is a
// multi-statement writer, so it must serialize with transactions via
// the cross-session write gate — and refuse to run inside the default
// session's own transaction (self-deadlock otherwise).
func TestGraphRunGatedAgainstTxn(t *testing.T) {
	vx, g := smallSocial(t)
	ctx := context.Background()

	if err := vx.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.PageRank(ctx, 2); err == nil {
		t.Fatal("graph run allowed inside the default session's transaction")
	}
	if err := vx.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Another session's open transaction blocks the run until COMMIT.
	s := vx.DB().NewSession()
	if _, _, err := s.Run(ctx, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, _, err := g.PageRank(cctx, 2); err == nil {
		t.Fatal("graph run slipped past another session's open transaction")
	}
	if _, _, err := s.Run(ctx, "COMMIT"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.PageRank(ctx, 2); err != nil {
		t.Fatalf("graph run failed after the transaction committed: %v", err)
	}
	// SQL-flavored runs take the same gate (their scratch-table DDL
	// must not deadlock against it).
	if _, err := g.PageRankSQL(ctx, 2); err != nil {
		t.Fatalf("SQL graph run under the gate: %v", err)
	}
}
