// Command vxgen generates synthetic graph datasets in SNAP edge-list
// format — the workloads of the paper's evaluation when the original
// SNAP files are unavailable.
//
// Usage:
//
//	vxgen -kind twitter -scale 0.05 -out twitter-s.txt
//	vxgen -kind ba -nodes 10000 -degree 8 -out ba.txt
//	vxgen -kind er -nodes 1000 -edges 5000 -out er.txt
//	vxgen -kind rmat -rmat-scale 14 -edges 100000 -out rmat.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	kind := flag.String("kind", "twitter", "twitter | gplus | livejournal | er | ba | rmat")
	scale := flag.Float64("scale", 0.01, "scale for the paper presets (1.0 = full paper size)")
	nodes := flag.Int64("nodes", 1000, "node count (er/ba)")
	edges := flag.Int("edges", 5000, "edge count (er/rmat)")
	degree := flag.Int("degree", 8, "edges per new node (ba)")
	rmatScale := flag.Uint("rmat-scale", 12, "log2 node count (rmat)")
	seed := flag.Int64("seed", 42, "generator seed")
	undirected := flag.Bool("undirected", false, "symmetrize edges")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var g *dataset.Graph
	switch *kind {
	case "twitter":
		g = dataset.TwitterScale(*scale)
	case "gplus":
		g = dataset.GPlusScale(*scale)
	case "livejournal":
		g = dataset.LiveJournalScale(*scale)
	case "er":
		g = dataset.ErdosRenyi("er", *nodes, *edges, *seed)
	case "ba":
		g = dataset.PreferentialAttachment("ba", *nodes, *degree, *seed)
	case "rmat":
		g = dataset.RMAT("rmat", *rmatScale, *edges, 0.57, 0.19, 0.19, *seed)
	default:
		fmt.Fprintf(os.Stderr, "vxgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *undirected {
		g = dataset.MakeUndirected(g)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vxgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteEdgeList(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "vxgen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "vxgen: wrote "+g.Stats())
}
