// Command vxserve is the Vertexica network server: it serves one
// engine (in-memory or persistent) to many client sessions over the
// wire protocol, with a global worker budget, bounded sessions, and
// graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	vxserve                                # in-memory on 127.0.0.1:5433
//	vxserve -listen :5433 -data ./vxdata   # persistent
//	vxserve -budget 8 -max-sessions 128    # serving knobs
//	vxserve -preload twitter=0.01          # load a dataset at boot
//	vxserve -smoke                         # boot, self-test, drain, exit
//	vxserve -debug-addr 127.0.0.1:6060     # pprof + expvar metrics endpoint
//
// Connect with `vertexica -connect host:port` or the Go client
// package (internal/client).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	vertexica "repro"
	"repro/internal/client"
	"repro/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5433", "listen address")
	dataDir := flag.String("data", "", "persistence directory (empty = in-memory)")
	budget := flag.Int("budget", server.DefaultWorkerBudget(), "global worker budget: max extra executor goroutines across all sessions (0 = unlimited)")
	maxSessions := flag.Int("max-sessions", 64, "admission control: max concurrent sessions")
	maxStmtWorkers := flag.Int("max-stmt-workers", 0, "admission control: per-statement worker cap (0 = engine default)")
	preload := flag.String("preload", "", "load a dataset at boot, e.g. twitter=0.01")
	grace := flag.Duration("grace", 30*time.Second, "drain grace period on shutdown")
	smoke := flag.Bool("smoke", false, "boot on an ephemeral port, run a client self-test, drain, exit")
	quiet := flag.Bool("quiet", false, "suppress per-session logs")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar (engine metrics) on this address (empty = off)")
	flag.Parse()

	var eng *vertexica.Engine
	var err error
	if *dataDir != "" {
		eng, err = vertexica.Open(*dataDir)
	} else {
		eng = vertexica.New()
	}
	if err != nil {
		fatal(err)
	}
	defer eng.Close()

	if *preload != "" {
		if err := preloadDataset(eng, *preload); err != nil {
			fatal(err)
		}
	}

	cfg := server.Config{
		MaxSessions:    *maxSessions,
		MaxStmtWorkers: *maxStmtWorkers,
		WorkerBudget:   *budget,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv := server.New(eng, cfg)

	if *debugAddr != "" {
		if err := startDebugServer(*debugAddr, eng); err != nil {
			fatal(err)
		}
	}

	if *smoke {
		if err := runSmoke(srv, *debugAddr); err != nil {
			fatal(err)
		}
		fmt.Println("vxserve: smoke test OK")
		return
	}

	if err := srv.Listen(*listen); err != nil {
		fatal(err)
	}
	log.Printf("vxserve: serving on %s (budget=%d, max sessions=%d)", srv.Addr(), *budget, *maxSessions)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	select {
	case s := <-sig:
		log.Printf("vxserve: %v — draining (grace %v)", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("vxserve: forced drain: %v", err)
		}
		<-done
	case err := <-done:
		if err != nil && err != server.ErrServerClosed {
			fatal(err)
		}
	}
	log.Printf("vxserve: bye")
}

// preloadDataset parses kind=scale and loads the dataset.
func preloadDataset(eng *vertexica.Engine, spec string) error {
	kind, scaleStr, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("vxserve: -preload wants kind=scale, got %q", spec)
	}
	scale, err := strconv.ParseFloat(scaleStr, 64)
	if err != nil {
		return fmt.Errorf("vxserve: -preload scale: %w", err)
	}
	var ds *vertexica.Dataset
	switch kind {
	case "twitter":
		ds = vertexica.TwitterScale(scale)
	case "gplus":
		ds = vertexica.GPlusScale(scale)
	case "livejournal":
		ds = vertexica.LiveJournalScale(scale)
	default:
		return fmt.Errorf("vxserve: unknown dataset kind %q", kind)
	}
	g, err := eng.LoadDatasetWithMetadata(ds, 42)
	if err != nil {
		return err
	}
	log.Printf("vxserve: preloaded %v", g)
	return nil
}

// runSmoke boots the server on an ephemeral port, drives it through a
// client (SQL, a prepared statement, a graph verb), and drains — the
// CI boot check. When a debug endpoint is up, it also checks that
// /debug/vars serves the engine metrics.
func runSmoke(srv *server.Server, debugAddr string) error {
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c, err := client.DialContext(ctx, srv.Addr())
	if err != nil {
		return fmt.Errorf("smoke dial: %w", err)
	}
	if _, err := c.Exec(ctx, "CREATE TABLE smoke (x INTEGER)"); err != nil {
		return fmt.Errorf("smoke create: %w", err)
	}
	if _, err := c.Exec(ctx, "INSERT INTO smoke VALUES (1), (2), (3)"); err != nil {
		return fmt.Errorf("smoke insert: %w", err)
	}
	rows, err := c.Query(ctx, "SELECT COUNT(*) FROM smoke")
	if err != nil || rows.Len() != 1 || rows.Value(0, 0).I != 3 {
		return fmt.Errorf("smoke select: %v", err)
	}
	loaded, err := c.Graph(ctx, "load", "twitter", "0.002")
	if err != nil || loaded.Len() != 1 {
		return fmt.Errorf("smoke load verb: %w", err)
	}
	ranks, err := c.PageRank(ctx, loaded.Value(0, 0).S, 3)
	if err != nil || len(ranks) == 0 {
		return fmt.Errorf("smoke pagerank: %v (%d ranks)", err, len(ranks))
	}
	if err := c.Close(); err != nil {
		return fmt.Errorf("smoke close: %w", err)
	}
	if debugAddr != "" {
		if err := checkDebugVars(ctx, debugAddr); err != nil {
			return err
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("smoke drain: %w", err)
	}
	if err := <-done; err != nil && err != server.ErrServerClosed {
		return fmt.Errorf("smoke serve: %w", err)
	}
	return nil
}

// checkDebugVars fetches /debug/vars and verifies the engine registry
// is published under the "vertexica" key.
func checkDebugVars(ctx context.Context, addr string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/debug/vars", nil)
	if err != nil {
		return fmt.Errorf("smoke debug: %w", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("smoke debug: %w", err)
	}
	defer resp.Body.Close()
	var vars struct {
		Vertexica map[string]int64 `json:"vertexica"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return fmt.Errorf("smoke debug: decode /debug/vars: %w", err)
	}
	if len(vars.Vertexica) == 0 {
		return fmt.Errorf("smoke debug: /debug/vars has no vertexica metrics")
	}
	return nil
}

// startDebugServer serves the stdlib debug mux (net/http/pprof under
// /debug/pprof, expvar under /debug/vars) on addr, with the engine's
// metrics registry published as the "vertexica" expvar map. Off by
// default; bind to localhost — the endpoint is unauthenticated.
func startDebugServer(addr string, eng *vertexica.Engine) error {
	eng.DB().Stats().PublishExpvar("vertexica")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("vxserve: debug listener: %w", err)
	}
	log.Printf("vxserve: debug endpoint on http://%s/debug/pprof (metrics at /debug/vars)", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			log.Printf("vxserve: debug server: %v", err)
		}
	}()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxserve:", err)
	os.Exit(1)
}
