// Command vxbench reproduces the paper's evaluation: Figure 2(a)
// PageRank and Figure 2(b) Shortest Paths across the four systems
// (graph database, Giraph, Vertexica vertex-centric, Vertexica SQL) and
// the three paper-shaped datasets, plus the §2.3 optimization
// ablations. It prints paper-style tables and verifies the qualitative
// shape of Figure 2.
//
// Usage:
//
//	vxbench -fig all -scale 0.01
//	vxbench -fig 2a -scale 0.02 -iters 10
//	vxbench -ablations -scale 0.01
//	vxbench -serve -scale 0.01          # study S: serving throughput
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	mvccbench "repro/internal/bench/mvcc"
	preparebench "repro/internal/bench/prepare"
	"repro/internal/bench/serve"
	shardbench "repro/internal/bench/shard"
	spillbench "repro/internal/bench/spill"
	"repro/internal/bench/stream"
)

func main() {
	fig := flag.String("fig", "all", "which figure to reproduce: 2a, 2b, all, or none")
	scale := flag.Float64("scale", 0.01, "dataset scale relative to the paper's sizes (1.0 = full)")
	iters := flag.Int("iters", 10, "PageRank iterations (paper: 10)")
	gdbLimit := flag.Int("gdb-limit", 60000, "edge count above which the graph-database baseline is skipped (0 = never skip)")
	ablations := flag.Bool("ablations", false, "also run the §2.3 optimization ablations")
	serveStudy := flag.Bool("serve", false, "run study S: concurrent-client serving throughput against an in-process vxserve")
	serveOps := flag.Int("serve-ops", 40, "study S: queries per client")
	serveBudget := flag.Int("serve-budget", runtime.NumCPU(), "study S: global worker budget")
	streamStudy := flag.Bool("stream", false, "run study T: first-row latency + allocation, materialized vs streamed execution")
	streamOut := flag.String("stream-out", "BENCH_stream.json", "study T: JSON trajectory file path (empty = don't write)")
	mvccStudy := flag.Bool("mvcc", false, "run study C: mixed-workload throughput, latch-based vs snapshot-based reads")
	mvccOut := flag.String("mvcc-out", "BENCH_mvcc.json", "study C: JSON trajectory file path (empty = don't write)")
	mvccReaders := flag.Int("mvcc-readers", 4, "study C: concurrent streaming readers")
	mvccWindow := flag.Duration("mvcc-window", 500*time.Millisecond, "study C: measured interval per variant")
	shardStudy := flag.Bool("shard", false, "run study P: disjoint-shard multi-writer commit throughput, sharded vs global write gate")
	shardOut := flag.String("shard-out", "BENCH_shard.json", "study P: JSON trajectory file path (empty = don't write)")
	shardWindow := flag.Duration("shard-window", 300*time.Millisecond, "study P: measured interval per cell")
	prepareStudy := flag.Bool("prepare", false, "run study Q: prepared-execution throughput, cached plans vs re-parse-per-exec substitution")
	prepareOut := flag.String("prepare-out", "BENCH_prepare.json", "study Q: JSON trajectory file path (empty = don't write)")
	prepareWindow := flag.Duration("prepare-window", 300*time.Millisecond, "study Q: measured interval per cell")
	spillStudy := flag.Bool("spill", false, "run study M: out-of-core sort/join/agg throughput under a 64KB grant, with a peak-heap bound")
	spillOut := flag.String("spill-out", "BENCH_spill.json", "study M: JSON trajectory file path (empty = don't write)")
	spillWindow := flag.Duration("spill-window", 500*time.Millisecond, "study M: measured interval per cell")
	giraphOverhead := flag.Duration("giraph-overhead", 0, "modeled Giraph per-superstep coordination (0 = default 80ms, negative = off)")
	flag.Parse()

	cfg := bench.Fig2Config{
		Scale:            *scale,
		PageRankIters:    *iters,
		GraphDBEdgeLimit: *gdbLimit,
		GiraphOverhead:   *giraphOverhead,
	}
	ctx := context.Background()

	fmt.Printf("vxbench: scale=%.4f iters=%d (paper sizes ×%.4f)\n", *scale, *iters, *scale)
	for _, ds := range bench.Fig2Datasets(*scale) {
		fmt.Println("  " + ds.Stats())
	}

	var allRows []bench.Row
	if *fig == "2a" || *fig == "all" {
		start := time.Now()
		rows, err := bench.RunFig2(ctx, "pagerank", cfg)
		if err != nil {
			fatal(err)
		}
		bench.PrintRows(os.Stdout, fmt.Sprintf("Figure 2(a): PageRank (%d iterations) — took %v", *iters, time.Since(start).Round(time.Millisecond)), rows)
		allRows = append(allRows, rows...)
	}
	if *fig == "2b" || *fig == "all" {
		start := time.Now()
		rows, err := bench.RunFig2(ctx, "sssp", cfg)
		if err != nil {
			fatal(err)
		}
		bench.PrintRows(os.Stdout, fmt.Sprintf("Figure 2(b): Single-Source Shortest Paths — took %v", time.Since(start).Round(time.Millisecond)), rows)
		allRows = append(allRows, rows...)
	}

	if len(allRows) > 0 {
		violations := bench.CheckFig2Shape(allRows)
		if len(violations) == 0 {
			fmt.Println("\nshape check: PASS — graph DB slowest, Vertexica(SQL) fastest, Vertexica beats Giraph on the small graph")
		} else {
			fmt.Println("\nshape check: FAIL")
			for _, v := range violations {
				fmt.Println("  " + v)
			}
		}
	}

	if *ablations {
		runAblations(*scale)
	}
	if *serveStudy {
		runServeStudy(*scale, *serveOps, *serveBudget)
	}
	if *streamStudy {
		runStreamStudy(*scale, *streamOut)
	}
	if *mvccStudy {
		runMvccStudy(*scale, *mvccReaders, *mvccWindow, *mvccOut)
	}
	if *shardStudy {
		runShardStudy(*shardWindow, *shardOut)
	}
	if *prepareStudy {
		runPrepareStudy(*prepareWindow, *prepareOut)
	}
	if *spillStudy {
		runSpillStudy(*scale, *spillWindow, *spillOut)
	}
}

// runSpillStudy measures rows/s for a sort, a hash join and a hash
// aggregate over a fact table several times a 64KB per-statement
// grant, in memory versus forced out of core, asserting the budgeted
// cells spill and stay under a peak-heap bound, recording the
// trajectory in BENCH_spill.json.
func runSpillStudy(scale float64, window time.Duration, out string) {
	fmt.Printf("\n=== study M: out-of-core execution (scale=%.4f, %v/cell) ===\n", scale, window)
	rows, err := spillbench.Study(scale, window, out)
	if err != nil {
		fatal(err)
	}
	bench.PrintAblation(os.Stdout, rows)
	if out != "" {
		fmt.Printf("trajectory written to %s\n", out)
	}
}

// runPrepareStudy measures queries/s for a point lookup and a 1-hop
// neighbor join executed through the prepared-plan cache versus
// re-parsed from substituted text on every execution, recording the
// trajectory in BENCH_prepare.json.
func runPrepareStudy(window time.Duration, out string) {
	fmt.Printf("\n=== study Q: prepared execution (%v/cell) ===\n", window)
	rows, err := preparebench.Study(window, out)
	if err != nil {
		fatal(err)
	}
	bench.PrintAblation(os.Stdout, rows)
	if out != "" {
		fmt.Printf("trajectory written to %s\n", out)
	}
}

// runShardStudy measures commits/s for 1, 2 and 4 writers committing
// multi-row INSERTs to disjoint shards of one table, under the sharded
// write path versus the forced global gate, recording the trajectory
// in BENCH_shard.json.
func runShardStudy(window time.Duration, out string) {
	fmt.Printf("\n=== study P: disjoint-shard writers (%v/cell) ===\n", window)
	rows, err := shardbench.Study(nil, window, out)
	if err != nil {
		fatal(err)
	}
	bench.PrintAblation(os.Stdout, rows)
	if out != "" {
		fmt.Printf("trajectory written to %s\n", out)
	}
}

// runMvccStudy measures mixed-workload throughput — N streaming
// readers plus one writer loop — with latch-coupled reads versus
// MVCC snapshot reads, recording the trajectory in BENCH_mvcc.json.
func runMvccStudy(scale float64, readers int, window time.Duration, out string) {
	fmt.Printf("\n=== study C: mvcc mixed workload (scale=%.4f, %d readers, %v/variant) ===\n", scale, readers, window)
	rows, err := mvccbench.Study(scale, readers, window, out)
	if err != nil {
		fatal(err)
	}
	bench.PrintAblation(os.Stdout, rows)
	if out != "" {
		fmt.Printf("trajectory written to %s\n", out)
	}
}

// runStreamStudy measures materialized vs streamed result delivery
// and records the trajectory in BENCH_stream.json.
func runStreamStudy(scale float64, out string) {
	fmt.Printf("\n=== study T: streaming execution (scale=%.4f) ===\n", scale)
	rows, err := stream.Study(scale, out)
	if err != nil {
		fatal(err)
	}
	bench.PrintAblation(os.Stdout, rows)
	if out != "" {
		fmt.Printf("trajectory written to %s\n", out)
	}
}

// runServeStudy reproduces the serving claim: queries/sec at 1, 4 and
// 16 concurrent client connections against one engine, with the
// global worker budget asserted never to overshoot.
func runServeStudy(scale float64, ops, budget int) {
	fmt.Printf("\n=== study S: serving throughput (budget=%d, %d ops/client) ===\n", budget, ops)
	rows, err := serve.Throughput(scale, []int{1, 4, 16}, ops, budget)
	if len(rows) > 0 {
		bench.PrintAblation(os.Stdout, rows)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println("budget check: PASS — budget gauge consistent (high-water ≤ capacity, slots drained)")
}

func runAblations(scale float64) {
	fmt.Println("\n=== §2.3 optimization ablations (PageRank on twitter-s unless noted) ===")
	workers := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		if n > 2 {
			workers = append(workers, 2)
		}
		workers = append(workers, n)
	}
	if rows, err := bench.AblationSQLParallel(scale, 5, workers); err == nil {
		bench.PrintAblation(os.Stdout, rows)
	} else {
		fatal(err)
	}
	if rows, err := bench.AblationUnionVsJoin(scale, 5); err == nil {
		bench.PrintAblation(os.Stdout, rows)
	} else {
		fatal(err)
	}
	if rows, err := bench.AblationInputCache(scale, 5); err == nil {
		bench.PrintAblation(os.Stdout, rows)
	} else {
		fatal(err)
	}
	if rows, err := bench.AblationBatching(scale, 5, []int{1, 4, 16, 64, 256}); err == nil {
		bench.PrintAblation(os.Stdout, rows)
	} else {
		fatal(err)
	}
	if rows, err := bench.AblationWorkers(scale, 5, []int{1, 2, 4, 8}); err == nil {
		bench.PrintAblation(os.Stdout, rows)
	} else {
		fatal(err)
	}
	if rows, err := bench.AblationUpdateVsReplace(scale, 5); err == nil {
		bench.PrintAblation(os.Stdout, rows)
	} else {
		fatal(err)
	}
	if rows, err := bench.AblationCombiner(scale, 5); err == nil {
		bench.PrintAblation(os.Stdout, rows)
	} else {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxbench:", err)
	os.Exit(1)
}
