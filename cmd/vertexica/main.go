// Command vertexica is the interactive console standing in for the
// demo's GUI (Figure 3): load graphs, run SQL, run vertex-centric and
// SQL graph algorithms, compose them, and compare against the Giraph
// baseline — the demonstration scenarios of §4, driven from a REPL.
//
// Usage:
//
//	vertexica                        # in-memory
//	vertexica -data ./vxdata         # persistent (snapshot + WAL)
//	vertexica -connect 127.0.0.1:5433  # drive a remote vxserve
//
// Console commands (\help lists them):
//
//	\load twitter 0.01            load a paper-shaped dataset
//	\loadfile g edges.txt         load a SNAP edge list
//	\pagerank twitter 10          vertex-centric PageRank
//	\pagerank-sql twitter 10      SQL PageRank
//	\sssp twitter 0               shortest paths from vertex 0
//	\triangles twitter            SQL triangle count
//	\overlap twitter 3            strong overlap pairs
//	\weakties twitter 3           weak ties
//	\compare twitter 10           PageRank: Vertexica vs Giraph runtimes
//	SELECT ...                    any SQL against the graph tables
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"context"

	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/giraph"

	vertexica "repro"
)

func main() {
	dataDir := flag.String("data", "", "persistence directory (empty = in-memory)")
	connect := flag.String("connect", "", "connect to a remote vxserve at host:port instead of running embedded")
	flag.Parse()

	if *connect != "" {
		remoteRepl(*connect)
		return
	}

	var vx *vertexica.Engine
	var err error
	if *dataDir != "" {
		vx, err = vertexica.Open(*dataDir)
	} else {
		vx = vertexica.New()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vertexica:", err)
		os.Exit(1)
	}
	defer vx.Close()

	fmt.Println("Vertexica console — \\help for commands, \\quit to exit")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for {
		fmt.Print("vertexica> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if quit := command(vx, line); quit {
				return
			}
			continue
		}
		runSQL(vx, line)
	}
}

func runSQL(vx *vertexica.Engine, stmt string) {
	start := time.Now()
	rows, n, err := vx.SQL(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if rows == nil {
		fmt.Printf("OK, %d rows affected (%v)\n", n, time.Since(start).Round(time.Microsecond))
		return
	}
	cols := rows.Columns()
	fmt.Println(strings.Join(cols, " | "))
	limit := rows.Len()
	if limit > 25 {
		limit = 25
	}
	for i := 0; i < limit; i++ {
		parts := make([]string, len(cols))
		for j := range cols {
			parts[j] = rows.Value(i, j).String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if rows.Len() > limit {
		fmt.Printf("... (%d rows total)\n", rows.Len())
	}
	fmt.Printf("%d rows (%v)\n", rows.Len(), time.Since(start).Round(time.Microsecond))
}

func command(vx *vertexica.Engine, line string) (quit bool) {
	fields := strings.Fields(line)
	cmd := fields[0]
	arg := func(i int, def string) string {
		if len(fields) > i {
			return fields[i]
		}
		return def
	}
	argInt := func(i int, def int64) int64 {
		if len(fields) > i {
			if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
				return v
			}
		}
		return def
	}
	ctx := context.Background()

	switch cmd {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Println(`commands:
  \load <twitter|gplus|livejournal> <scale>   generate + load a paper-shaped graph
  \loadfile <name> <path>                     load a SNAP edge list
  \graphs                                     list loaded graphs
  \pagerank <graph> [iters]                   vertex-centric PageRank (top 10)
  \pagerank-sql <graph> [iters]               SQL PageRank (top 10)
  \sssp <graph> <source>                      vertex-centric shortest paths
  \sssp-sql <graph> <source>                  SQL shortest paths
  \components <graph>                         connected components
  \triangles <graph>                          SQL triangle count
  \overlap <graph> [minCommon]                strong overlap pairs
  \weakties <graph> [minPairs]                weak ties (bridges)
  \compare <graph> [iters]                    Vertexica vs Giraph PageRank runtime
  \checkpoint                                 persist (when -data is set)
  <any SQL statement>                         run against the engine`)
	case "\\graphs":
		for _, n := range vx.DB().Catalog().Names() {
			if strings.HasSuffix(n, "_vertex") {
				fmt.Println("  " + strings.TrimSuffix(n, "_vertex"))
			}
		}
	case "\\load":
		kind := arg(1, "twitter")
		scale, _ := strconv.ParseFloat(arg(2, "0.01"), 64)
		var ds *vertexica.Dataset
		switch kind {
		case "twitter":
			ds = vertexica.TwitterScale(scale)
		case "gplus":
			ds = vertexica.GPlusScale(scale)
		case "livejournal":
			ds = vertexica.LiveJournalScale(scale)
		default:
			fmt.Println("unknown dataset kind:", kind)
			return
		}
		g, err := vx.LoadDatasetWithMetadata(ds, 42)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("loaded", g)
	case "\\loadfile":
		name, path := arg(1, "g"), arg(2, "")
		f, err := os.Open(path)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		ds, err := dataset.ReadEdgeList(name, f, 42)
		f.Close()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		g, err := vx.LoadDataset(ds)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("loaded", g)
	case "\\pagerank", "\\pagerank-sql":
		g, err := vx.OpenGraph(arg(1, ""))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		iters := int(argInt(2, 10))
		start := time.Now()
		var ranks map[int64]float64
		if cmd == "\\pagerank" {
			ranks, _, err = g.PageRank(ctx, iters)
		} else {
			ranks, err = g.PageRankSQL(ctx, iters)
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printTop(ranks, 10)
		fmt.Printf("(%v)\n", time.Since(start).Round(time.Millisecond))
	case "\\sssp", "\\sssp-sql":
		g, err := vx.OpenGraph(arg(1, ""))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		src := argInt(2, 0)
		start := time.Now()
		var dists map[int64]float64
		if cmd == "\\sssp" {
			dists, _, err = g.ShortestPaths(ctx, src, false)
		} else {
			dists, err = g.ShortestPathsSQL(ctx, src, false)
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		reach := 0
		for _, d := range dists {
			if d < 1e17 {
				reach++
			}
		}
		fmt.Printf("%d vertices reachable from %d (%v)\n", reach, src, time.Since(start).Round(time.Millisecond))
	case "\\components":
		g, err := vx.OpenGraph(arg(1, ""))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		labels, _, err := g.ConnectedComponents(ctx)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		sizes := map[int64]int{}
		for _, l := range labels {
			sizes[l]++
		}
		fmt.Printf("%d components\n", len(sizes))
	case "\\triangles":
		g, err := vx.OpenGraph(arg(1, ""))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		start := time.Now()
		n, err := g.TriangleCount()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%d triangles (%v)\n", n, time.Since(start).Round(time.Millisecond))
	case "\\overlap":
		g, err := vx.OpenGraph(arg(1, ""))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		pairs, err := g.StrongOverlap(argInt(2, 3))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		for i, p := range pairs {
			if i >= 10 {
				fmt.Printf("... (%d pairs total)\n", len(pairs))
				break
			}
			fmt.Printf("  (%d, %d): %d common neighbors\n", p.A, p.B, p.Common)
		}
	case "\\weakties":
		g, err := vx.OpenGraph(arg(1, ""))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		ties, err := g.WeakTies(argInt(2, 3))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		for i, t := range ties {
			if i >= 10 {
				fmt.Printf("... (%d ties total)\n", len(ties))
				break
			}
			fmt.Printf("  vertex %d bridges %d open pairs\n", t.ID, t.Pairs)
		}
	case "\\compare":
		compare(vx, arg(1, ""), int(argInt(2, 10)))
	case "\\checkpoint":
		if err := vx.Checkpoint(); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("checkpointed")
	default:
		fmt.Println("unknown command; \\help lists commands")
	}
	return false
}

// compare reruns PageRank on Vertexica and the Giraph baseline — the
// GUI's "Compare With Giraph" checkbox.
func compare(vx *vertexica.Engine, name string, iters int) {
	g, err := vx.OpenGraph(name)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	start := time.Now()
	if _, _, err := g.PageRank(context.Background(), iters); err != nil {
		fmt.Println("error:", err)
		return
	}
	vxTime := time.Since(start)

	rows, _, err := vx.SQL(fmt.Sprintf("SELECT src, dst, weight FROM %s_edge", name))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ge := giraph.New(giraph.Config{})
	for i := 0; i < rows.Len(); i++ {
		ge.AddEdge(rows.Value(i, 0).I, rows.Value(i, 1).I, rows.Value(i, 2).F)
	}
	start = time.Now()
	if _, _, err := giraph.PageRank(ge, iters); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("Vertexica: %v   Giraph (modeled cluster): %v\n",
		vxTime.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
}

func printTop(scores map[int64]float64, k int) {
	type kv struct {
		id int64
		v  float64
	}
	all := make([]kv, 0, len(scores))
	for id, v := range scores {
		all = append(all, kv{id, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].id < all[j].id
	})
	if len(all) > k {
		all = all[:k]
	}
	for _, e := range all {
		fmt.Printf("  %8d  %.6f\n", e.id, e.v)
	}
}

// --- remote mode (-connect): the same console over the wire protocol ---

// remoteRepl drives a remote vxserve: SQL statements (including SET /
// BEGIN / COMMIT / ROLLBACK session control) go through Query/Exec and
// the graph commands become server-side verbs.
func remoteRepl(addr string) {
	c, err := client.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vertexica: connect:", err)
		os.Exit(1)
	}
	defer c.Close()
	fmt.Printf("Vertexica console — connected to %s (session %d)\n", addr, c.SessionID())
	fmt.Printf("server: %s\n", c.ServerInfo())
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for {
		fmt.Print("vertexica> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if quit := remoteCommand(c, line); quit {
				return
			}
			continue
		}
		runRemoteSQL(c, line)
	}
}

func runRemoteSQL(c *client.Conn, stmt string) {
	start := time.Now()
	rows, n, err := c.RunSQL(context.Background(), stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if rows == nil {
		fmt.Printf("OK, %d rows affected (%v)\n", n, time.Since(start).Round(time.Microsecond))
		return
	}
	printRemoteRows(rows, start)
}

func printRemoteRows(rows *client.Rows, start time.Time) {
	cols := rows.Columns()
	fmt.Println(strings.Join(cols, " | "))
	limit := rows.Len()
	if limit > 25 {
		limit = 25
	}
	for i := 0; i < limit; i++ {
		parts := make([]string, len(cols))
		for j := range cols {
			parts[j] = rows.Value(i, j).String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if rows.Len() > limit {
		fmt.Printf("... (%d rows total)\n", rows.Len())
	}
	fmt.Printf("%d rows (%v)\n", rows.Len(), time.Since(start).Round(time.Microsecond))
}

func remoteCommand(c *client.Conn, line string) (quit bool) {
	fields := strings.Fields(line)
	cmd := fields[0]
	arg := func(i int, def string) string {
		if len(fields) > i {
			return fields[i]
		}
		return def
	}
	ctx := context.Background()

	verb := ""
	var args []string
	switch cmd {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Println(`remote commands (server-side verbs):
  \load <twitter|gplus|livejournal> <scale>   load a paper-shaped graph on the server
  \graphs                                     list server graphs
  \pagerank <graph> [iters]                   vertex-centric PageRank (top 10)
  \pagerank-sql <graph> [iters]               SQL PageRank (top 10)
  \sssp <graph> <source>                      shortest paths
  \sssp-sql <graph> <source>                  SQL shortest paths
  \components <graph>                         connected components
  \triangles <graph>                          triangle count
  SET statement_timeout = <ms>                per-session statement timeout
  SET parallelism = <n>                       per-session worker cap
  BEGIN / COMMIT / ROLLBACK                   transaction control
  <any SQL statement>                         run on the server`)
		return false
	case "\\load":
		verb, args = "load", []string{arg(1, "twitter"), arg(2, "0.01")}
	case "\\graphs":
		verb = "graphs"
	case "\\pagerank", "\\pagerank-sql":
		verb, args = strings.TrimPrefix(cmd, "\\"), []string{arg(1, ""), arg(2, "10")}
	case "\\sssp", "\\sssp-sql":
		verb, args = strings.TrimPrefix(cmd, "\\"), []string{arg(1, ""), arg(2, "0")}
	case "\\components":
		verb, args = "components", []string{arg(1, "")}
	case "\\triangles":
		verb, args = "triangles", []string{arg(1, "")}
	default:
		fmt.Println("unknown remote command; \\help lists commands")
		return false
	}
	start := time.Now()
	rows, err := c.Graph(ctx, verb, args...)
	if err != nil {
		fmt.Println("error:", err)
		return false
	}
	switch verb {
	case "pagerank", "pagerank-sql":
		ranks := make(map[int64]float64, rows.Len())
		for i := 0; i < rows.Len(); i++ {
			ranks[rows.Value(i, 0).I] = rows.Value(i, 1).F
		}
		printTop(ranks, 10)
		fmt.Printf("(%v)\n", time.Since(start).Round(time.Millisecond))
	case "sssp", "sssp-sql":
		reach := 0
		for i := 0; i < rows.Len(); i++ {
			if rows.Value(i, 1).F < 1e17 {
				reach++
			}
		}
		fmt.Printf("%d vertices reachable from %s (%v)\n", reach, args[1], time.Since(start).Round(time.Millisecond))
	case "components":
		sizes := map[int64]int{}
		for i := 0; i < rows.Len(); i++ {
			sizes[rows.Value(i, 1).I]++
		}
		fmt.Printf("%d components\n", len(sizes))
	default:
		printRemoteRows(rows, start)
	}
	return false
}
