// Quickstart: load a Twitter-shaped graph, run PageRank through both
// Vertexica interfaces (vertex-centric and hand-tuned SQL), verify they
// agree, and mix in plain SQL over the same tables — the core promise
// of the paper in ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"

	vertexica "repro"
)

func main() {
	vx := vertexica.New()

	// Generate and load a scaled-down version of the paper's Twitter
	// dataset (81K nodes / 1.7M edges at scale 1.0).
	ds := vertexica.TwitterScale(0.02)
	g, err := vx.LoadDataset(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded", g)

	// Vertex-centric PageRank: the Pregel-style interface (§2.1).
	ctx := context.Background()
	ranks, stats, err := g.PageRank(ctx, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vertex-centric PageRank: %d supersteps, %d messages, %v\n",
		stats.Supersteps, stats.TotalMessages, stats.Duration.Round(1e6))

	// The same algorithm as hand-optimized SQL — the fast path of
	// Figure 2.
	sqlRanks, err := g.PageRankSQL(ctx, 10)
	if err != nil {
		log.Fatal(err)
	}
	for id, r := range ranks {
		if math.Abs(sqlRanks[id]-r) > 1e-9 {
			log.Fatalf("interfaces disagree at vertex %d: %v vs %v", id, r, sqlRanks[id])
		}
	}
	fmt.Println("SQL PageRank agrees with the vertex-centric result")

	// Top-5 vertices by rank.
	type kv struct {
		id int64
		r  float64
	}
	var top []kv
	for id, r := range ranks {
		top = append(top, kv{id, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top 5 by PageRank:")
	for _, e := range top[:5] {
		fmt.Printf("  vertex %6d  rank %.6f\n", e.id, e.r)
	}

	// And because the graph lives in relational tables, plain SQL
	// works too (§3.4): the most-followed vertices by out-degree.
	rows, _, err := vx.SQL(`SELECT src, COUNT(*) AS outdeg FROM twitter_s_edge
		GROUP BY src ORDER BY outdeg DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5 by out-degree (plain SQL):")
	for i := 0; i < rows.Len(); i++ {
		fmt.Printf("  vertex %6s  outdeg %s\n", rows.Value(i, 0), rows.Value(i, 1))
	}
}
