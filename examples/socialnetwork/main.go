// Social-network analysis: the paper's §3.2 hybrid queries and §3.4
// relational pre-/post-processing on a metadata-rich graph — select a
// subgraph by edge type, count triangles, find strong overlaps and weak
// ties, combine weak ties with PageRank ("important bridges"), and
// aggregate results with SQL — the end-to-end pipeline of Figure 3.
package main

import (
	"context"
	"fmt"
	"log"

	vertexica "repro"

	"repro/internal/algorithms"
	"repro/internal/pipeline"
)

func main() {
	vx := vertexica.New()
	ctx := context.Background()

	// A symmetrized social graph with §4 metadata (edge types
	// family/friend/classmate, weights, timestamps; 60 vertex attrs).
	ds := vertexica.MakeUndirected(vertexica.ErdosRenyi("soc", 300, 1800, 7))
	g, err := vx.LoadDatasetWithMetadata(ds, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded", g)

	// --- 1-hop SQL analyses (§3.2) ---
	tri, err := g.TriangleCount()
	if err != nil {
		log.Fatal(err)
	}
	gcc, err := g.GlobalClusteringCoefficient()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d   global clustering coefficient: %.4f\n", tri, gcc)

	overlaps, err := g.StrongOverlap(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strong-overlap pairs (>=4 common neighbors): %d", len(overlaps))
	if len(overlaps) > 0 {
		fmt.Printf("   strongest: (%d,%d) share %d", overlaps[0].A, overlaps[0].B, overlaps[0].Common)
	}
	fmt.Println()

	// --- hybrid: weak ties that are also important (§3.2) ---
	bridges, err := g.ImportantBridges(ctx, 10, 1.0/300, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("important bridges (>=10 open pairs, rank >= mean): %d\n", len(bridges))

	// --- hybrid: SSSP from the most clustered vertex (§3.2) ---
	src, dists, err := g.ShortestPathsFromMostClustered(ctx, true)
	if err != nil {
		log.Fatal(err)
	}
	reach := 0
	for _, d := range dists {
		if d < 1e17 {
			reach++
		}
	}
	fmt.Printf("SSSP from most-clustered vertex %d reaches %d vertices\n", src, reach)

	// --- relational pre-processing + pipeline (Figure 3's dataflow) ---
	// Scope the analysis to "family" edges, run PageRank on the
	// subgraph, and post-process with a histogram — selection →
	// algorithm → aggregation.
	p := pipeline.New(
		&pipeline.Subgraph{Target: "family_net", EdgeWhere: "etype = 'family'"},
		&pipeline.VertexProgramStage{
			Label:   "pagerank",
			Program: algorithms.NewPageRank(10),
			Init:    func(int64) string { return "" },
			Key:     "ranks",
		},
		&pipeline.TopK{InputKey: "ranks", K: 3, Key: "top"},
		&pipeline.Histogram{InputKey: "ranks", Buckets: 5, Key: "hist"},
	)
	pc, err := p.Run(ctx, vx.DB(), g.Core())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfamily-only subgraph pipeline:", pc.Trace)
	for _, s := range pc.Values["top"].([]pipeline.Scored) {
		fmt.Printf("  top vertex %4d rank %.5f\n", s.ID, s.Score)
	}
	fmt.Println("  rank distribution:")
	for _, b := range pc.Values["hist"].([]pipeline.Bucket) {
		fmt.Printf("    [%.5f, %.5f): %d\n", b.Lo, b.Hi, b.Count)
	}

	// --- ad-hoc relational post-processing over metadata (§3.4) ---
	rows, _, err := vx.SQL(`
		SELECT m.u0, COUNT(*) AS members, AVG(m.f0) AS avg_f0
		FROM soc_vertex_meta AS m
		GROUP BY m.u0 ORDER BY members DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmetadata aggregation (group by binary attribute u0):")
	for i := 0; i < rows.Len(); i++ {
		fmt.Printf("  u0=%s: %s members, avg f0 %.3f\n",
			rows.Value(i, 0), rows.Value(i, 1), rows.Value(i, 2).AsFloat())
	}
}
