// Time-series and continuous analysis (§3.3 / §4.2.3): snapshot a
// graph at several points of its edge-creation history, watch PageRank
// evolve across snapshots, then mutate the live graph and observe the
// analysis change — graph analytics as a continuous process, not a
// one-time activity.
package main

import (
	"context"
	"fmt"
	"log"

	vertexica "repro"
)

func main() {
	vx := vertexica.New()
	ctx := context.Background()

	// Edge creation timestamps in the generated datasets span ~5 years
	// starting 2009-01-01 (see internal/dataset).
	ds := vertexica.PreferentialAttachment("net", 400, 6, 2024)
	g, err := vx.LoadDataset(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded", g)

	// Yearly snapshot timestamps across the dataset's range.
	years := []int64{
		1262304000, // 2010-01-01
		1293840000, // 2011-01-01
		1325376000, // 2012-01-01
		1356998400, // 2013-01-01
	}

	// "How has the PageRank of a node changed over the last years?"
	series, err := g.PageRankTimeSeries(ctx, years, 10)
	if err != nil {
		log.Fatal(err)
	}
	probe := int64(0) // the oldest node accumulates edges over time
	fmt.Printf("PageRank of vertex %d across snapshots:\n", probe)
	for i, ts := range series.Times {
		fmt.Printf("  t=%d  rank=%.6f\n", ts, series.Scores[i][probe])
	}

	// "Which nodes changed the most between the last two years?"
	deltas := vertexica.DiffScores(series.Scores[len(series.Scores)-2], series.Scores[len(series.Scores)-1])
	fmt.Println("largest rank movers in the final year:")
	for i, d := range deltas {
		if i >= 5 {
			break
		}
		fmt.Printf("  vertex %4d: %.6f -> %.6f\n", d.ID, d.Old, d.New)
	}

	// "Which nodes have come closer?" — SSSP time series.
	spSeries, err := g.ShortestPathTimeSeries(ctx, []int64{years[0], years[3]}, 0)
	if err != nil {
		log.Fatal(err)
	}
	closer := vertexica.CloserPairs(spSeries.Scores[0], spSeries.Scores[1], 1)
	fmt.Printf("%d vertices moved >=1 hop closer to vertex 0 between 2010 and 2013\n", len(closer))

	// Continuous mode: monitor PageRank while mutating the live graph.
	mon := g.NewPageRankMonitor(10)
	if _, err := mon.Run(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncontinuous mode: attaching a new celebrity vertex 9999 to the hubs...")
	deltas, err = mon.ApplyAndRerun(ctx,
		"INSERT INTO net_vertex VALUES (9999, '', FALSE)",
		"INSERT INTO net_edge VALUES (9999, 0, 1.0, 'friend', 1400000000), (0, 9999, 1.0, 'friend', 1400000000)",
		"INSERT INTO net_edge VALUES (9999, 1, 1.0, 'friend', 1400000000), (1, 9999, 1.0, 'friend', 1400000000)",
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rank changes caused by the mutation (top 5):")
	for i, d := range deltas {
		if i >= 5 {
			break
		}
		fmt.Printf("  vertex %4d: %.6f -> %.6f\n", d.ID, d.Old, d.New)
	}
}
