// Recommender: collaborative filtering (§3.1) as a vertex-centric
// program on a bipartite user–item rating graph. Latent factor vectors
// are trained by message-passing SGD; predictions are dot products.
// Because everything lives in relational tables, rating data can be
// pre-filtered and post-joined with plain SQL.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	vertexica "repro"
)

func main() {
	vx := vertexica.New()
	ctx := context.Background()

	g, err := vx.CreateGraph("ratings")
	if err != nil {
		log.Fatal(err)
	}

	// Users 1..40 rate items 1001..1020. Users with even ids love
	// even items and dislike odd items, and vice versa — a planted
	// two-cluster structure the factorization should recover.
	const users, items = 40, 20
	for u := int64(1); u <= users; u++ {
		if err := g.AddVertex(u, ""); err != nil {
			log.Fatal(err)
		}
	}
	for it := int64(1001); it <= 1000+items; it++ {
		if err := g.AddVertex(it, ""); err != nil {
			log.Fatal(err)
		}
	}
	nRatings := 0
	for u := int64(1); u <= users; u++ {
		for it := int64(1001); it <= 1000+items; it++ {
			// Sparse observations: each user rates ~1/3 of items.
			if (u*7+it*13)%3 != 0 {
				continue
			}
			rating := 1.0
			if (u+it)%2 == 0 {
				rating = 5.0
			}
			// Ratings live on edges in both directions so both sides
			// see them during message passing.
			if err := g.AddEdge(u, it, rating, "rated", 0); err != nil {
				log.Fatal(err)
			}
			if err := g.AddEdge(it, u, rating, "rated", 0); err != nil {
				log.Fatal(err)
			}
			nRatings++
		}
	}
	fmt.Printf("bipartite graph: %d users, %d items, %d ratings\n", users, items, nRatings)

	// Train latent vectors (dimension 8, 80 SGD rounds).
	vectors, stats, err := g.CollaborativeFiltering(ctx, 8, 80)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %d supersteps (%v)\n", stats.Supersteps, stats.Duration.Round(1e6))

	// Evaluate on the observed ratings.
	rows, _, err := vx.SQL("SELECT src, dst, weight FROM ratings_edge WHERE src < 1000")
	if err != nil {
		log.Fatal(err)
	}
	var se float64
	for i := 0; i < rows.Len(); i++ {
		u, it, r := rows.Value(i, 0).I, rows.Value(i, 1).I, rows.Value(i, 2).F
		pred, ok := vertexica.PredictRating(vectors, u, it)
		if !ok {
			log.Fatalf("missing vectors for (%d,%d)", u, it)
		}
		se += (pred - r) * (pred - r)
	}
	fmt.Printf("training RMSE: %.3f (ratings are 1 or 5)\n", rmse(se, rows.Len()))

	// Recommend unseen items for user 2 (even → should prefer evens).
	fmt.Println("predictions for user 2:")
	for _, it := range []int64{1002, 1004, 1003, 1005} {
		pred, _ := vertexica.PredictRating(vectors, 2, it)
		fmt.Printf("  item %d: %.2f\n", it, pred)
	}
	even, _ := vertexica.PredictRating(vectors, 2, 1002)
	odd, _ := vertexica.PredictRating(vectors, 2, 1003)
	if even > odd {
		fmt.Println("cluster structure recovered: user 2 prefers even items ✓")
	} else {
		fmt.Println("WARNING: expected user 2 to prefer even items")
	}
}

func rmse(se float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(se / float64(n))
}
