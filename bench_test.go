package vertexica

// Benchmark harness regenerating the paper's evaluation:
//
//	BenchmarkFig2a_*  — Figure 2(a): PageRank across four systems and
//	                    the three paper-shaped datasets.
//	BenchmarkFig2b_*  — Figure 2(b): Shortest Paths, same grid.
//	BenchmarkAblation* — §2.3 optimization ablations (table unions,
//	                    vertex batching, parallel workers,
//	                    update-vs-replace, message combiner).
//	BenchmarkHop1_*   — §3.2 1-hop SQL algorithms.
//	BenchmarkTemporal* — §3.3 time-series analysis.
//
// Datasets are scaled down from the paper's sizes (see DESIGN.md) so
// the whole suite runs on one machine; EXPERIMENTS.md records the
// measured shape against the paper's. The Giraph and GraphDB baselines
// include their modeled overheads (cluster coordination, transaction
// cost), exactly as in the Figure 2 reproduction.

import (
	"context"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/giraph"
	"repro/internal/graphdb"
	"repro/internal/sqlgraph"
	"repro/internal/temporal"
)

// Bench-scale datasets (node counts ~300-2000, edges ~8-14k).
func benchTwitter() *dataset.Graph     { return dataset.TwitterScale(0.01) }
func benchGPlus() *dataset.Graph       { return dataset.GPlusScale(0.002) }
func benchLiveJournal() *dataset.Graph { return dataset.LiveJournalScale(0.0004) }

const benchPRIters = 10 // the paper's PageRank depth

func loadVertexicaBench(b *testing.B, ds *dataset.Graph) *core.Graph {
	b.Helper()
	db := engine.New()
	g, err := core.CreateGraph(db, "bench")
	if err != nil {
		b.Fatal(err)
	}
	edges := make([]core.Edge, len(ds.Edges))
	for i, e := range ds.Edges {
		edges[i] = core.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight, Type: e.Type, Created: e.Created}
	}
	vals := make(map[int64]string, ds.Nodes)
	for v := int64(0); v < ds.Nodes; v++ {
		vals[v] = ""
	}
	if err := g.BulkLoad(vals, edges); err != nil {
		b.Fatal(err)
	}
	return g
}

func loadGiraphBench(b *testing.B, ds *dataset.Graph) *giraph.Engine {
	b.Helper()
	e := giraph.New(giraph.Config{}) // default modeled cluster overhead
	for v := int64(0); v < ds.Nodes; v++ {
		e.AddVertex(v)
	}
	for _, ed := range ds.Edges {
		e.AddEdge(ed.Src, ed.Dst, ed.Weight)
	}
	return e
}

func loadGraphDBBench(b *testing.B, ds *dataset.Graph) *graphdb.Store {
	b.Helper()
	s := graphdb.New() // default modeled transaction overhead
	rows := make([][3]float64, len(ds.Edges))
	for i, e := range ds.Edges {
		rows[i] = [3]float64{float64(e.Src), float64(e.Dst), e.Weight}
	}
	if err := s.Load(rows); err != nil {
		b.Fatal(err)
	}
	return s
}

// --- Figure 2(a): PageRank ---

func benchPageRankVertexica(b *testing.B, ds *dataset.Graph) {
	g := loadVertexicaBench(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := algorithms.RunPageRank(context.Background(), g, benchPRIters, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPageRankSQL(b *testing.B, ds *dataset.Graph) {
	g := loadVertexicaBench(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlgraph.PageRank(context.Background(), g, benchPRIters, 0.85); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPageRankGiraph(b *testing.B, ds *dataset.Graph) {
	e := loadGiraphBench(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := giraph.PageRank(e, benchPRIters); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPageRankGraphDB(b *testing.B, ds *dataset.Graph) {
	s := loadGraphDBBench(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphdb.PageRank(s, benchPRIters, 0.85); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2a_Twitter_GraphDB(b *testing.B)      { benchPageRankGraphDB(b, benchTwitter()) }
func BenchmarkFig2a_Twitter_Giraph(b *testing.B)       { benchPageRankGiraph(b, benchTwitter()) }
func BenchmarkFig2a_Twitter_Vertexica(b *testing.B)    { benchPageRankVertexica(b, benchTwitter()) }
func BenchmarkFig2a_Twitter_VertexicaSQL(b *testing.B) { benchPageRankSQL(b, benchTwitter()) }

// GraphDB did not finish the larger graphs in the paper either
// (Figure 2 shows Neo4j only on Twitter); we keep the same DNF policy.
func BenchmarkFig2a_GPlus_GraphDB(b *testing.B) {
	b.Skip("DNF: graph database baseline only runs the smallest dataset, as in the paper")
}
func BenchmarkFig2a_GPlus_Giraph(b *testing.B)       { benchPageRankGiraph(b, benchGPlus()) }
func BenchmarkFig2a_GPlus_Vertexica(b *testing.B)    { benchPageRankVertexica(b, benchGPlus()) }
func BenchmarkFig2a_GPlus_VertexicaSQL(b *testing.B) { benchPageRankSQL(b, benchGPlus()) }

func BenchmarkFig2a_LiveJournal_GraphDB(b *testing.B) {
	b.Skip("DNF: graph database baseline only runs the smallest dataset, as in the paper")
}
func BenchmarkFig2a_LiveJournal_Giraph(b *testing.B) { benchPageRankGiraph(b, benchLiveJournal()) }
func BenchmarkFig2a_LiveJournal_Vertexica(b *testing.B) {
	benchPageRankVertexica(b, benchLiveJournal())
}
func BenchmarkFig2a_LiveJournal_VertexicaSQL(b *testing.B) {
	benchPageRankSQL(b, benchLiveJournal())
}

// --- Figure 2(b): Shortest Paths ---

func benchSSSPVertexica(b *testing.B, ds *dataset.Graph) {
	g := loadVertexicaBench(b, ds)
	src := ds.MaxOutDegreeNode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := algorithms.RunSSSP(context.Background(), g, src, false, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSSSPSQL(b *testing.B, ds *dataset.Graph) {
	g := loadVertexicaBench(b, ds)
	src := ds.MaxOutDegreeNode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlgraph.ShortestPaths(context.Background(), g, src, false); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSSSPGiraph(b *testing.B, ds *dataset.Graph) {
	e := loadGiraphBench(b, ds)
	src := ds.MaxOutDegreeNode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := giraph.SSSP(e, src, false); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSSSPGraphDB(b *testing.B, ds *dataset.Graph) {
	s := loadGraphDBBench(b, ds)
	src := ds.MaxOutDegreeNode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphdb.ShortestPaths(s, src, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2b_Twitter_GraphDB(b *testing.B)      { benchSSSPGraphDB(b, benchTwitter()) }
func BenchmarkFig2b_Twitter_Giraph(b *testing.B)       { benchSSSPGiraph(b, benchTwitter()) }
func BenchmarkFig2b_Twitter_Vertexica(b *testing.B)    { benchSSSPVertexica(b, benchTwitter()) }
func BenchmarkFig2b_Twitter_VertexicaSQL(b *testing.B) { benchSSSPSQL(b, benchTwitter()) }

func BenchmarkFig2b_GPlus_GraphDB(b *testing.B) {
	b.Skip("DNF: graph database baseline only runs the smallest dataset, as in the paper")
}
func BenchmarkFig2b_GPlus_Giraph(b *testing.B)       { benchSSSPGiraph(b, benchGPlus()) }
func BenchmarkFig2b_GPlus_Vertexica(b *testing.B)    { benchSSSPVertexica(b, benchGPlus()) }
func BenchmarkFig2b_GPlus_VertexicaSQL(b *testing.B) { benchSSSPSQL(b, benchGPlus()) }

func BenchmarkFig2b_LiveJournal_GraphDB(b *testing.B) {
	b.Skip("DNF: graph database baseline only runs the smallest dataset, as in the paper")
}
func BenchmarkFig2b_LiveJournal_Giraph(b *testing.B)    { benchSSSPGiraph(b, benchLiveJournal()) }
func BenchmarkFig2b_LiveJournal_Vertexica(b *testing.B) { benchSSSPVertexica(b, benchLiveJournal()) }
func BenchmarkFig2b_LiveJournal_VertexicaSQL(b *testing.B) {
	benchSSSPSQL(b, benchLiveJournal())
}

// --- Ablations (§2.3 optimizations) ---

func benchPageRankOpts(b *testing.B, opts core.Options, iters int) {
	g := loadVertexicaBench(b, benchTwitter())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := algorithms.RunPageRank(context.Background(), g, iters, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationUnionVsJoin_Union(b *testing.B) {
	benchPageRankOpts(b, core.Options{UseJoinInput: false}, 5)
}
func BenchmarkAblationUnionVsJoin_Join(b *testing.B) {
	benchPageRankOpts(b, core.Options{UseJoinInput: true}, 5)
}

func BenchmarkAblationBatching_1Partition(b *testing.B) {
	benchPageRankOpts(b, core.Options{Partitions: 1}, 5)
}
func BenchmarkAblationBatching_4Partitions(b *testing.B) {
	benchPageRankOpts(b, core.Options{Partitions: 4}, 5)
}
func BenchmarkAblationBatching_16Partitions(b *testing.B) {
	benchPageRankOpts(b, core.Options{Partitions: 16}, 5)
}
func BenchmarkAblationBatching_64Partitions(b *testing.B) {
	benchPageRankOpts(b, core.Options{Partitions: 64}, 5)
}
func BenchmarkAblationBatching_256Partitions(b *testing.B) {
	benchPageRankOpts(b, core.Options{Partitions: 256}, 5)
}

func BenchmarkAblationWorkers_1(b *testing.B) { benchPageRankOpts(b, core.Options{Workers: 1}, 5) }
func BenchmarkAblationWorkers_2(b *testing.B) { benchPageRankOpts(b, core.Options{Workers: 2}, 5) }
func BenchmarkAblationWorkers_4(b *testing.B) { benchPageRankOpts(b, core.Options{Workers: 4}, 5) }
func BenchmarkAblationWorkers_8(b *testing.B) { benchPageRankOpts(b, core.Options{Workers: 8}, 5) }

// Update-vs-replace: PageRank updates every vertex every superstep
// (dense); SSSP touches few (sparse). The paper's 10% threshold should
// pick replace for the former and update for the latter.
func BenchmarkAblationUpdateVsReplace_PageRank_AlwaysUpdate(b *testing.B) {
	benchPageRankOpts(b, core.Options{UpdateThreshold: 2}, 5)
}
func BenchmarkAblationUpdateVsReplace_PageRank_AlwaysReplace(b *testing.B) {
	benchPageRankOpts(b, core.Options{UpdateThreshold: -1}, 5)
}
func BenchmarkAblationUpdateVsReplace_PageRank_PaperPolicy(b *testing.B) {
	benchPageRankOpts(b, core.Options{UpdateThreshold: 0.10}, 5)
}

func benchSSSPOpts(b *testing.B, opts core.Options) {
	ds := benchTwitter()
	g := loadVertexicaBench(b, ds)
	src := ds.MaxOutDegreeNode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := algorithms.RunSSSP(context.Background(), g, src, true, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationUpdateVsReplace_SSSP_AlwaysUpdate(b *testing.B) {
	benchSSSPOpts(b, core.Options{UpdateThreshold: 2})
}
func BenchmarkAblationUpdateVsReplace_SSSP_AlwaysReplace(b *testing.B) {
	benchSSSPOpts(b, core.Options{UpdateThreshold: -1})
}
func BenchmarkAblationUpdateVsReplace_SSSP_PaperPolicy(b *testing.B) {
	benchSSSPOpts(b, core.Options{UpdateThreshold: 0.10})
}

func BenchmarkAblationCombiner_On(b *testing.B) {
	benchPageRankOpts(b, core.Options{DisableCombiner: false}, 5)
}
func BenchmarkAblationCombiner_Off(b *testing.B) {
	benchPageRankOpts(b, core.Options{DisableCombiner: true}, 5)
}

// --- §3.2 1-hop SQL algorithms ---

func loadUndirectedBench(b *testing.B) *core.Graph {
	b.Helper()
	ds := dataset.MakeUndirected(dataset.ErdosRenyi("hop1", 400, 2400, 9))
	return loadVertexicaBench(b, ds)
}

func BenchmarkHop1_TriangleCounting(b *testing.B) {
	g := loadUndirectedBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlgraph.TriangleCount(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHop1_StrongOverlap(b *testing.B) {
	g := loadUndirectedBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlgraph.StrongOverlap(g, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHop1_WeakTies(b *testing.B) {
	g := loadUndirectedBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlgraph.WeakTies(g, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHop1_ClusteringCoefficients(b *testing.B) {
	g := loadUndirectedBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlgraph.ClusteringCoefficients(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §3.3 temporal analysis ---

func BenchmarkTemporalPageRankTimeSeries(b *testing.B) {
	g := loadVertexicaBench(b, benchTwitter())
	times := []int64{1262304000, 1293840000, 1325376000} // three yearly snapshots
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := temporal.TimeSeries(context.Background(), g, times,
			func(ctx context.Context, cg *core.Graph) (map[int64]float64, error) {
				r, _, err := algorithms.RunPageRank(ctx, cg, 3, core.Options{})
				return r, err
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenchmarks ---

func BenchmarkEngineSQLJoinAggregate(b *testing.B) {
	g := loadVertexicaBench(b, benchTwitter())
	q := "SELECT e.dst, COUNT(*) FROM bench_edge AS e JOIN bench_vertex AS v ON e.src = v.id GROUP BY e.dst"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.DB.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineInsert(b *testing.B) {
	db := engine.New()
	if _, err := db.Exec("CREATE TABLE t (a INTEGER, b DOUBLE, c VARCHAR)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (1, 2.5, 'row'), (2, 3.5, 'row2')"); err != nil {
			b.Fatal(err)
		}
	}
}
