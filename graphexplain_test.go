package vertexica

import (
	"strings"
	"testing"
)

// EXPLAIN over graph verbs: the facade installs the renderer hook, so
// EXPLAIN PAGERANK / SSSP / COMPONENTS / TRIANGLES answer through
// ordinary SQL, and the ANALYZE variant actually runs the verb and
// folds its RunStats in.

func explainVerb(t *testing.T, vx *Engine, stmt string) []string {
	t.Helper()
	rows, _, err := vx.SQL(stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	out := make([]string, rows.Len())
	for i := range out {
		out[i] = rows.Value(i, 0).S
	}
	return out
}

func wantContains(t *testing.T, stmt string, lines []string, subs ...string) {
	t.Helper()
	joined := strings.Join(lines, "\n")
	for _, sub := range subs {
		if !strings.Contains(joined, sub) {
			t.Errorf("%s: output lacks %q:\n%s", stmt, sub, joined)
		}
	}
}

func TestExplainGraphVerb(t *testing.T) {
	vx, _ := smallSocial(t)

	stmt := "EXPLAIN PAGERANK social 5"
	lines := explainVerb(t, vx, stmt)
	wantContains(t, stmt, lines,
		`pagerank iterations=5 on graph "social" (vertex-centric)`,
		"40 vertices",
		"hash partitions",
		"input cache: edge side built once",
		"combiner: enabled",
		"write-back: update in place when <10%",
		"schedule: up to",
	)
	// Plain EXPLAIN must not run the verb.
	for _, l := range lines {
		if strings.Contains(l, "executed:") {
			t.Fatalf("%s executed the run: %q", stmt, l)
		}
	}

	stmt = "EXPLAIN SSSP social 0 1"
	wantContains(t, stmt, explainVerb(t, vx, stmt),
		"sssp source=0 unit_weights=true", "vertex-centric")

	stmt = "EXPLAIN PAGERANK_SQL social 3"
	wantContains(t, stmt, explainVerb(t, vx, stmt),
		"(iterated SQL)", "iterations: 3 (fixed)")

	stmt = "EXPLAIN TRIANGLES social"
	wantContains(t, stmt, explainVerb(t, vx, stmt),
		"one-shot SQL", "self-join the edge table")

	if _, _, err := vx.SQL("EXPLAIN PAGERANK"); err == nil {
		t.Error("EXPLAIN PAGERANK without a graph name succeeded")
	}
	if _, _, err := vx.SQL("EXPLAIN FROBNICATE social"); err == nil {
		t.Error("EXPLAIN of an unknown verb succeeded")
	}
}

func TestExplainAnalyzeGraphVerb(t *testing.T) {
	vx, _ := smallSocial(t)

	stmt := "EXPLAIN ANALYZE PAGERANK social 4"
	lines := explainVerb(t, vx, stmt)
	wantContains(t, stmt, lines,
		"executed: supersteps=",
		"cache: builds=",
		"superstep  1:",
		"result: 40 rows",
	)

	stmt = "EXPLAIN ANALYZE COMPONENTS social"
	wantContains(t, stmt, explainVerb(t, vx, stmt),
		"executed: supersteps=", "result: 40 rows")

	stmt = "EXPLAIN ANALYZE TRIANGLES social"
	wantContains(t, stmt, explainVerb(t, vx, stmt), "executed: triangles=")
}
