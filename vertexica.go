// Package vertexica is a Go reproduction of "Vertexica: Your Relational
// Friend for Graph Analytics!" (Jindal et al., VLDB 2014): vertex-
// centric (Pregel-style) graph analytics executed entirely on a
// relational column-store engine, together with hand-tuned SQL graph
// algorithms, hybrid 1-hop analyses, dynamic/temporal graph analysis,
// and relational pre-/post-processing pipelines.
//
// The package is a facade over the internal subsystems:
//
//	engine     — embedded columnar SQL engine (the Vertica stand-in)
//	core       — the vertex-centric coordinator/worker runtime
//	algorithms — vertex programs (PageRank, SSSP, WCC, CF, RWR)
//	sqlgraph   — the SQL implementations ("Vertexica (SQL)")
//	pipeline   — dataflow composition (Figure 3)
//	temporal   — snapshots, time series, continuous analysis (§3.3)
//	dataset    — workload generators and SNAP I/O
//
// Quick start:
//
//	vx := vertexica.New()
//	g, _ := vx.LoadDataset(vertexica.TwitterScale(0.05))
//	ranks, _, _ := g.PageRank(context.Background(), 10)
package vertexica

import (
	"context"
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/sqlgraph"
	"repro/internal/storage"
)

// Re-exported types so callers program against one package.
type (
	// Value is a dynamically typed SQL scalar.
	Value = storage.Value
	// Type is a SQL column type.
	Type = storage.Type
	// Rows is a materialized query result.
	Rows = engine.Rows
	// Edge is a graph edge with weight/type/created metadata.
	Edge = core.Edge
	// Message is a vertex-to-vertex message.
	Message = core.Message
	// VertexProgram is a user vertex computation (Pregel API).
	VertexProgram = core.VertexProgram
	// VertexContext is the per-vertex worker API.
	VertexContext = core.VertexContext
	// Options tunes a vertex-centric run (workers, batching,
	// update-vs-replace threshold, union-vs-join input).
	Options = core.Options
	// RunStats profiles a vertex-centric run.
	RunStats = core.RunStats
	// ScalarFunc is a SQL scalar UDF.
	ScalarFunc = expr.ScalarFunc
	// Dataset is a generated or loaded graph workload.
	Dataset = dataset.Graph
	// OverlapPair is a strong-overlap result row.
	OverlapPair = sqlgraph.OverlapPair
	// WeakTie is a weak-ties result row.
	WeakTie = sqlgraph.WeakTie
)

// Column types, re-exported for UDF signatures.
const (
	TypeInt64   = storage.TypeInt64
	TypeFloat64 = storage.TypeFloat64
	TypeString  = storage.TypeString
	TypeBool    = storage.TypeBool
)

// Value constructors, re-exported for UDFs and direct row assembly.
var (
	Int64Value   = storage.Int64
	Float64Value = storage.Float64
	StringValue  = storage.Str
	BoolValue    = storage.Bool
	NullValue    = storage.Null
)

// Dataset generators (see internal/dataset for parameters).
var (
	// TwitterScale generates the Twitter-shaped dataset of Figure 2.
	TwitterScale = dataset.TwitterScale
	// GPlusScale generates the GPlus-shaped dataset of Figure 2.
	GPlusScale = dataset.GPlusScale
	// LiveJournalScale generates the LiveJournal-shaped dataset.
	LiveJournalScale = dataset.LiveJournalScale
	// ErdosRenyi generates a uniform random graph.
	ErdosRenyi = dataset.ErdosRenyi
	// PreferentialAttachment generates a power-law graph.
	PreferentialAttachment = dataset.PreferentialAttachment
	// RMAT generates a Kronecker-style graph.
	RMAT = dataset.RMAT
	// MakeUndirected symmetrizes a dataset's edges.
	MakeUndirected = dataset.MakeUndirected
)

// Engine is a Vertexica instance: an embedded relational database with
// the vertex-centric layer on top.
type Engine struct {
	db *engine.DB
}

// New returns an in-memory Vertexica engine.
func New() *Engine { return &Engine{db: engine.New()} }

// Open returns a persistent engine rooted at dir (snapshot + WAL
// recovery happen here if files exist).
func Open(dir string) (*Engine, error) {
	db, err := engine.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Engine{db: db}, nil
}

// Close flushes and closes the engine.
func (e *Engine) Close() error { return e.db.Close() }

// Checkpoint makes all current table contents durable (persistent
// engines only).
func (e *Engine) Checkpoint() error { return e.db.Checkpoint() }

// DB exposes the underlying relational engine for advanced use
// (transactions, direct catalog access).
func (e *Engine) DB() *engine.DB { return e.db }

// SetParallelism caps how many worker goroutines one SQL statement may
// use (morsel-parallel scans/filters/projections, parallel hash-join
// probes, partitioned aggregation). Default: runtime.NumCPU(). 1 runs
// fully serial; results are byte-identical at every setting.
func (e *Engine) SetParallelism(n int) { e.db.SetParallelism(n) }

// SQL executes any SQL statement; SELECTs return rows, DML returns nil
// rows with the affected count.
func (e *Engine) SQL(query string) (*Rows, int, error) {
	rows, err := e.db.Query(query)
	if err == nil {
		return rows, rows.Len(), nil
	}
	res, err2 := e.db.Exec(query)
	if err2 != nil {
		return nil, 0, err
	}
	return nil, res.RowsAffected, nil
}

// RegisterUDF installs a scalar SQL UDF.
func (e *Engine) RegisterUDF(f *ScalarFunc) error { return e.db.RegisterUDF(f) }

// Begin/Commit/Rollback expose statement-level transactions.
func (e *Engine) Begin() error    { return e.db.Begin() }
func (e *Engine) Commit() error   { return e.db.Commit() }
func (e *Engine) Rollback() error { return e.db.Rollback() }

// Graph is a handle to one graph's relational tables.
type Graph struct {
	e *Engine
	g *core.Graph
}

// Name returns the graph name.
func (g *Graph) Name() string { return g.g.Name }

// Core exposes the internal graph handle (for pipeline/temporal
// composition).
func (g *Graph) Core() *core.Graph { return g.g }

// CreateGraph creates an empty graph.
func (e *Engine) CreateGraph(name string) (*Graph, error) {
	cg, err := core.CreateGraph(e.db, name)
	if err != nil {
		return nil, err
	}
	return &Graph{e: e, g: cg}, nil
}

// OpenGraph binds to an existing graph.
func (e *Engine) OpenGraph(name string) (*Graph, error) {
	cg, err := core.OpenGraph(e.db, name)
	if err != nil {
		return nil, err
	}
	return &Graph{e: e, g: cg}, nil
}

// DropGraph removes a graph's tables.
func (e *Engine) DropGraph(name string) error { return core.DropGraph(e.db, name) }

// LoadDataset creates a graph named after the dataset and bulk-loads
// its edges (vertices are created from edge endpoints).
func (e *Engine) LoadDataset(ds *Dataset) (*Graph, error) {
	g, err := e.CreateGraph(ds.Name)
	if err != nil {
		return nil, err
	}
	edges := make([]core.Edge, len(ds.Edges))
	for i, de := range ds.Edges {
		edges[i] = core.Edge{Src: de.Src, Dst: de.Dst, Weight: de.Weight, Type: de.Type, Created: de.Created}
	}
	vals := make(map[int64]string, ds.Nodes)
	for v := int64(0); v < ds.Nodes; v++ {
		vals[v] = ""
	}
	if err := g.g.BulkLoad(vals, edges); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadDatasetWithMetadata additionally generates the paper's §4 vertex
// metadata table (<name>_vertex_meta).
func (e *Engine) LoadDatasetWithMetadata(ds *Dataset, seed int64) (*Graph, error) {
	g, err := e.LoadDataset(ds)
	if err != nil {
		return nil, err
	}
	ids := make([]int64, 0, ds.Nodes)
	for v := int64(0); v < ds.Nodes; v++ {
		ids = append(ids, v)
	}
	if err := dataset.ApplyMetadata(e.db, ds.Name, ids, seed); err != nil {
		return nil, err
	}
	return g, nil
}

// AddVertex inserts one vertex.
func (g *Graph) AddVertex(id int64, value string) error { return g.g.AddVertex(id, value) }

// AddVertexIfMissing inserts a vertex with an empty value unless it
// already exists.
func (g *Graph) AddVertexIfMissing(id int64) error {
	v, err := g.e.db.QueryScalar(fmt.Sprintf(
		"SELECT COUNT(*) FROM %s WHERE id = %d", g.g.VertexTable(), id))
	if err != nil {
		return err
	}
	if v.I > 0 {
		return nil
	}
	return g.g.AddVertex(id, "")
}

// AddEdge inserts one edge.
func (g *Graph) AddEdge(src, dst int64, weight float64, etype string, created int64) error {
	return g.g.AddEdge(src, dst, weight, etype, created)
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() (int64, error) { return g.g.NumVertices() }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() (int64, error) { return g.g.NumEdges() }

// VertexValues returns every vertex's current value string.
func (g *Graph) VertexValues() (map[int64]string, error) { return g.g.VertexValues() }

// RunProgram executes an arbitrary vertex program. initial (if non-nil)
// resets vertex values first.
func (g *Graph) RunProgram(ctx context.Context, prog VertexProgram, opts Options, initial func(id int64) string) (*RunStats, error) {
	if initial != nil {
		if err := g.g.ResetForRun(initial); err != nil {
			return nil, err
		}
	}
	return core.Run(ctx, g.g, prog, opts)
}

// --- vertex-centric algorithms (§3.1) ---

// PageRank runs vertex-centric PageRank for the given iterations.
func (g *Graph) PageRank(ctx context.Context, iterations int, opts ...Options) (map[int64]float64, *RunStats, error) {
	return algorithms.RunPageRank(ctx, g.g, iterations, optOrDefault(opts))
}

// ShortestPaths runs vertex-centric SSSP from source.
func (g *Graph) ShortestPaths(ctx context.Context, source int64, unitWeights bool, opts ...Options) (map[int64]float64, *RunStats, error) {
	return algorithms.RunSSSP(ctx, g.g, source, unitWeights, optOrDefault(opts))
}

// ConnectedComponents labels each vertex with its component's min id.
func (g *Graph) ConnectedComponents(ctx context.Context, opts ...Options) (map[int64]int64, *RunStats, error) {
	return algorithms.RunConnectedComponents(ctx, g.g, optOrDefault(opts))
}

// CollaborativeFiltering trains latent vectors on a bipartite rating
// graph and returns them per vertex.
func (g *Graph) CollaborativeFiltering(ctx context.Context, dim, iterations int, opts ...Options) (map[int64][]float64, *RunStats, error) {
	return algorithms.RunCollabFilter(ctx, g.g, algorithms.NewCollabFilter(dim, iterations), optOrDefault(opts))
}

// RandomWalkWithRestart computes personalized-PageRank scores from a
// source vertex.
func (g *Graph) RandomWalkWithRestart(ctx context.Context, source int64, iterations int, opts ...Options) (map[int64]float64, *RunStats, error) {
	return algorithms.RunRandomWalkRestart(ctx, g.g, source, iterations, optOrDefault(opts))
}

// PredictRating is the collaborative-filtering dot-product predictor.
func PredictRating(vectors map[int64][]float64, user, item int64) (float64, bool) {
	return algorithms.Predict(vectors, user, item)
}

func optOrDefault(opts []Options) Options {
	if len(opts) > 0 {
		return opts[0]
	}
	return Options{}
}

// --- SQL algorithms ("Vertexica (SQL)") ---

// PageRankSQL runs the hand-tuned SQL PageRank. ctx cancels between
// and inside SQL iterations.
func (g *Graph) PageRankSQL(ctx context.Context, iterations int) (map[int64]float64, error) {
	return sqlgraph.PageRank(ctx, g.g, iterations, 0.85)
}

// ShortestPathsSQL runs the SQL SSSP (unreachable vertices absent).
func (g *Graph) ShortestPathsSQL(ctx context.Context, source int64, unitWeights bool) (map[int64]float64, error) {
	return sqlgraph.ShortestPaths(ctx, g.g, source, unitWeights)
}

// ConnectedComponentsSQL runs SQL label propagation.
func (g *Graph) ConnectedComponentsSQL(ctx context.Context) (map[int64]int64, error) {
	return sqlgraph.ConnectedComponents(ctx, g.g)
}

// TriangleCount counts distinct triangles (symmetrized graphs).
func (g *Graph) TriangleCount() (int64, error) { return sqlgraph.TriangleCount(g.g) }

// TriangleCountPerNode counts triangles per vertex.
func (g *Graph) TriangleCountPerNode() (map[int64]int64, error) {
	return sqlgraph.TriangleCountPerNode(g.g)
}

// StrongOverlap finds vertex pairs with >= minCommon shared neighbors.
func (g *Graph) StrongOverlap(minCommon int64) ([]OverlapPair, error) {
	return sqlgraph.StrongOverlap(g.g, minCommon)
}

// WeakTies finds bridge vertices with >= minPairs disconnected
// neighbor pairs.
func (g *Graph) WeakTies(minPairs int64) ([]WeakTie, error) {
	return sqlgraph.WeakTies(g.g, minPairs)
}

// ClusteringCoefficients computes per-vertex local clustering.
func (g *Graph) ClusteringCoefficients() (map[int64]float64, error) {
	return sqlgraph.ClusteringCoefficients(g.g)
}

// GlobalClusteringCoefficient combines triangle counting with wedge
// counting (§4.2.2's "combine triangle counting with weak ties").
func (g *Graph) GlobalClusteringCoefficient() (float64, error) {
	return sqlgraph.GlobalClusteringCoefficient(g.g)
}

// --- hybrid queries (§3.2) ---

// ImportantBridges finds "sufficiently important nodes which act as
// bridges": weak ties with at least minPairs open neighbor pairs whose
// PageRank (iterations rounds) is at least rankThreshold.
func (g *Graph) ImportantBridges(ctx context.Context, minPairs int64, rankThreshold float64, iterations int) ([]WeakTie, error) {
	ranks, _, err := g.PageRank(ctx, iterations)
	if err != nil {
		return nil, err
	}
	ties, err := g.WeakTies(minPairs)
	if err != nil {
		return nil, err
	}
	out := ties[:0]
	for _, t := range ties {
		if ranks[t.ID] >= rankThreshold {
			out = append(out, t)
		}
	}
	return out, nil
}

// ShortestPathsFromMostClustered runs SSSP with the source chosen as
// the vertex with the maximum local clustering coefficient — the §3.2
// hybrid example.
func (g *Graph) ShortestPathsFromMostClustered(ctx context.Context, unitWeights bool) (source int64, dists map[int64]float64, err error) {
	source, _, err = sqlgraph.MostClusteredVertex(g.g)
	if err != nil {
		return 0, nil, err
	}
	dists, _, err = g.ShortestPaths(ctx, source, unitWeights)
	return source, dists, err
}

// NearOrImportant returns vertices that are either within maxDist of
// source or have PageRank >= rankThreshold — the §4.2.2 "very near or
// relatively very important" composition.
func (g *Graph) NearOrImportant(ctx context.Context, source int64, maxDist, rankThreshold float64, iterations int) (map[int64]string, error) {
	dists, _, err := g.ShortestPaths(ctx, source, true)
	if err != nil {
		return nil, err
	}
	ranks, _, err := g.PageRank(ctx, iterations)
	if err != nil {
		return nil, err
	}
	out := make(map[int64]string)
	for id, d := range dists {
		if d <= maxDist {
			out[id] = "near"
		}
	}
	for id, r := range ranks {
		if r >= rankThreshold {
			if _, ok := out[id]; ok {
				out[id] = "near+important"
			} else {
				out[id] = "important"
			}
		}
	}
	return out, nil
}

// String renders a short description of the graph.
func (g *Graph) String() string {
	nv, _ := g.NumVertices()
	ne, _ := g.NumEdges()
	return fmt.Sprintf("graph %s (%d vertices, %d edges)", g.g.Name, nv, ne)
}
