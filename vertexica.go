// Package vertexica is a Go reproduction of "Vertexica: Your Relational
// Friend for Graph Analytics!" (Jindal et al., VLDB 2014): vertex-
// centric (Pregel-style) graph analytics executed entirely on a
// relational column-store engine, together with hand-tuned SQL graph
// algorithms, hybrid 1-hop analyses, dynamic/temporal graph analysis,
// and relational pre-/post-processing pipelines.
//
// The package is a facade over the internal subsystems:
//
//	engine     — embedded columnar SQL engine (the Vertica stand-in)
//	core       — the vertex-centric coordinator/worker runtime
//	algorithms — vertex programs (PageRank, SSSP, WCC, CF, RWR)
//	sqlgraph   — the SQL implementations ("Vertexica (SQL)")
//	pipeline   — dataflow composition (Figure 3)
//	temporal   — snapshots, time series, continuous analysis (§3.3)
//	dataset    — workload generators and SNAP I/O
//
// Quick start:
//
//	vx := vertexica.New()
//	g, _ := vx.LoadDataset(vertexica.TwitterScale(0.05))
//	ranks, _, _ := g.PageRank(context.Background(), 10)
package vertexica

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/sched"
	"repro/internal/sqlgraph"
	"repro/internal/storage"
)

// Re-exported types so callers program against one package.
type (
	// Value is a dynamically typed SQL scalar.
	Value = storage.Value
	// Type is a SQL column type.
	Type = storage.Type
	// Rows is a query result: facade entry points return it
	// materialized (random access via Len/Row/Value); streaming
	// consumers use engine.Session.RunStream and iterate with Next.
	Rows = engine.Rows
	// Edge is a graph edge with weight/type/created metadata.
	Edge = core.Edge
	// Message is a vertex-to-vertex message.
	Message = core.Message
	// VertexProgram is a user vertex computation (Pregel API).
	VertexProgram = core.VertexProgram
	// VertexContext is the per-vertex worker API.
	VertexContext = core.VertexContext
	// Options tunes a vertex-centric run (workers, batching,
	// update-vs-replace threshold, union-vs-join input).
	Options = core.Options
	// RunStats profiles a vertex-centric run.
	RunStats = core.RunStats
	// ScalarFunc is a SQL scalar UDF.
	ScalarFunc = expr.ScalarFunc
	// Dataset is a generated or loaded graph workload.
	Dataset = dataset.Graph
	// OverlapPair is a strong-overlap result row.
	OverlapPair = sqlgraph.OverlapPair
	// WeakTie is a weak-ties result row.
	WeakTie = sqlgraph.WeakTie
)

// Column types, re-exported for UDF signatures.
const (
	TypeInt64   = storage.TypeInt64
	TypeFloat64 = storage.TypeFloat64
	TypeString  = storage.TypeString
	TypeBool    = storage.TypeBool
)

// Value constructors, re-exported for UDFs and direct row assembly.
var (
	Int64Value   = storage.Int64
	Float64Value = storage.Float64
	StringValue  = storage.Str
	BoolValue    = storage.Bool
	NullValue    = storage.Null
)

// Dataset generators (see internal/dataset for parameters).
var (
	// TwitterScale generates the Twitter-shaped dataset of Figure 2.
	TwitterScale = dataset.TwitterScale
	// GPlusScale generates the GPlus-shaped dataset of Figure 2.
	GPlusScale = dataset.GPlusScale
	// LiveJournalScale generates the LiveJournal-shaped dataset.
	LiveJournalScale = dataset.LiveJournalScale
	// ErdosRenyi generates a uniform random graph.
	ErdosRenyi = dataset.ErdosRenyi
	// PreferentialAttachment generates a power-law graph.
	PreferentialAttachment = dataset.PreferentialAttachment
	// RMAT generates a Kronecker-style graph.
	RMAT = dataset.RMAT
	// MakeUndirected symmetrizes a dataset's edges.
	MakeUndirected = dataset.MakeUndirected
)

// Engine is a Vertexica instance: an embedded relational database with
// the vertex-centric layer on top.
type Engine struct {
	db        *engine.DB
	sessionMu sync.Mutex      // sessions run one statement at a time; keep the facade goroutine-safe
	session   *engine.Session // default session (REPL / embedded SQL)
}

// New returns an in-memory Vertexica engine.
func New() *Engine {
	db := engine.New()
	e := &Engine{db: db, session: db.NewSession()}
	db.SetGraphExplainer(e.explainGraphVerb)
	return e
}

// Open returns a persistent engine rooted at dir (snapshot + WAL
// recovery happen here if files exist).
func Open(dir string) (*Engine, error) {
	db, err := engine.Open(dir)
	if err != nil {
		return nil, err
	}
	e := &Engine{db: db, session: db.NewSession()}
	db.SetGraphExplainer(e.explainGraphVerb)
	return e, nil
}

// Close flushes and closes the engine.
func (e *Engine) Close() error { return e.db.Close() }

// Checkpoint makes all current table contents durable (persistent
// engines only).
func (e *Engine) Checkpoint() error { return e.db.Checkpoint() }

// DB exposes the underlying relational engine for advanced use
// (transactions, direct catalog access).
func (e *Engine) DB() *engine.DB { return e.db }

// SetParallelism caps how many worker goroutines one SQL statement may
// use (morsel-parallel scans/filters/projections, parallel hash-join
// probes, partitioned aggregation). Default: runtime.NumCPU(). 1 runs
// fully serial; results are byte-identical at every setting.
func (e *Engine) SetParallelism(n int) { e.db.SetParallelism(n) }

// SetWorkerBudget caps the total extra worker goroutines across every
// concurrent SQL statement AND vertex-centric run sharing this engine
// — the global budget that keeps a PageRank run and a burst of SQL
// sessions from oversubscribing cores. Each parallel construct keeps
// its calling goroutine for free and draws extras from the budget, so
// execution degrades toward serial under load instead of thrashing;
// results are byte-identical at every budget. n <= 0 removes the cap
// (the default).
func (e *Engine) SetWorkerBudget(n int) { e.db.SetWorkerBudget(n) }

// WorkerBudget exposes the shared budget's gauges (capacity, in-use,
// high-water) for benchmarks and serving dashboards.
func (e *Engine) WorkerBudget() *sched.Budget { return e.db.WorkerBudget() }

// Session returns the engine's default session (session variables such
// as statement_timeout, SET/SHOW, transaction scope). The network
// server gives every connection its own session; embedded callers
// share this one through SQL/Begin/Commit/Rollback, which serialize on
// it. Callers that want concurrent statements should create their own
// sessions with DB().NewSession() instead of driving this one from
// several goroutines.
func (e *Engine) Session() *engine.Session { return e.session }

// runDefault executes one statement on the default session. Sessions
// run one statement at a time, so the facade serializes here — Engine
// stays safe for concurrent use, exactly like before the serving
// layer existed.
func (e *Engine) runDefault(query string) (*Rows, engine.Result, error) {
	e.sessionMu.Lock()
	defer e.sessionMu.Unlock()
	return e.session.Run(context.Background(), query)
}

// SQL executes any SQL statement through the default session; SELECTs
// (and SHOW) return rows, DML returns nil rows with the affected
// count, and SET/BEGIN/COMMIT/ROLLBACK manage the session.
func (e *Engine) SQL(query string) (*Rows, int, error) {
	rows, res, err := e.runDefault(query)
	if err != nil {
		return nil, 0, err
	}
	return rows, res.RowsAffected, nil
}

// RegisterUDF installs a scalar SQL UDF.
func (e *Engine) RegisterUDF(f *ScalarFunc) error { return e.db.RegisterUDF(f) }

// Begin/Commit/Rollback expose statement-level transactions (scoped to
// the default session, like SQL("BEGIN")).
func (e *Engine) Begin() error    { _, _, err := e.runDefault("BEGIN"); return err }
func (e *Engine) Commit() error   { _, _, err := e.runDefault("COMMIT"); return err }
func (e *Engine) Rollback() error { _, _, err := e.runDefault("ROLLBACK"); return err }

// Graph is a handle to one graph's relational tables.
type Graph struct {
	e *Engine
	g *core.Graph
}

// Name returns the graph name.
func (g *Graph) Name() string { return g.g.Name }

// Core exposes the internal graph handle (for pipeline/temporal
// composition).
func (g *Graph) Core() *core.Graph { return g.g }

// CreateGraph creates an empty graph (single-shard tables, the
// historical layout).
func (e *Engine) CreateGraph(name string) (*Graph, error) {
	cg, err := core.CreateGraph(e.db, name)
	if err != nil {
		return nil, err
	}
	return &Graph{e: e, g: cg}, nil
}

// CreateGraphSharded creates an empty graph whose three tables are
// hash-partitioned into the given number of shards (vertex by id, edge
// by src, message by dst) — concurrent writers on disjoint shards
// proceed in parallel and superstep input assembly aligns its
// partitions with the shard layout. Algorithm results are byte-
// identical to a single-shard graph at any shard count.
func (e *Engine) CreateGraphSharded(name string, shards int) (*Graph, error) {
	cg, err := core.CreateGraphSharded(e.db, name, shards)
	if err != nil {
		return nil, err
	}
	return &Graph{e: e, g: cg}, nil
}

// OpenGraph binds to an existing graph.
func (e *Engine) OpenGraph(name string) (*Graph, error) {
	cg, err := core.OpenGraph(e.db, name)
	if err != nil {
		return nil, err
	}
	return &Graph{e: e, g: cg}, nil
}

// DropGraph removes a graph's tables.
func (e *Engine) DropGraph(name string) error { return core.DropGraph(e.db, name) }

// LoadDataset creates a graph named after the dataset and bulk-loads
// its edges (vertices are created from edge endpoints). The load is a
// multi-statement writer, so it runs under the cross-session write
// gate like a transaction.
func (e *Engine) LoadDataset(ds *Dataset) (g *Graph, err error) {
	err = e.runGated(context.Background(), func(context.Context) error {
		g, err = e.loadDataset(ds)
		return err
	})
	return g, err
}

func (e *Engine) loadDataset(ds *Dataset) (*Graph, error) {
	g, err := e.CreateGraph(ds.Name)
	if err != nil {
		return nil, err
	}
	edges := make([]core.Edge, len(ds.Edges))
	for i, de := range ds.Edges {
		edges[i] = core.Edge{Src: de.Src, Dst: de.Dst, Weight: de.Weight, Type: de.Type, Created: de.Created}
	}
	vals := make(map[int64]string, ds.Nodes)
	for v := int64(0); v < ds.Nodes; v++ {
		vals[v] = ""
	}
	if err := g.g.BulkLoad(vals, edges); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadDatasetWithMetadata additionally generates the paper's §4 vertex
// metadata table (<name>_vertex_meta).
func (e *Engine) LoadDatasetWithMetadata(ds *Dataset, seed int64) (g *Graph, err error) {
	err = e.runGated(context.Background(), func(context.Context) error {
		g, err = e.loadDataset(ds)
		if err != nil {
			return err
		}
		ids := make([]int64, 0, ds.Nodes)
		for v := int64(0); v < ds.Nodes; v++ {
			ids = append(ids, v)
		}
		return dataset.ApplyMetadata(e.db, ds.Name, ids, seed)
	})
	return g, err
}

// AddVertex inserts one vertex. Like an auto-commit write statement it
// takes the cross-session write gate, so another session's rollback
// can never clobber it.
func (g *Graph) AddVertex(id int64, value string) error {
	return g.e.runGated(context.Background(), func(context.Context) error {
		return g.g.AddVertex(id, value)
	})
}

// AddVertexIfMissing inserts a vertex with an empty value unless it
// already exists.
func (g *Graph) AddVertexIfMissing(id int64) error {
	v, err := g.e.db.QueryScalar(fmt.Sprintf(
		"SELECT COUNT(*) FROM %s WHERE id = %d", g.g.VertexTable(), id))
	if err != nil {
		return err
	}
	if v.I > 0 {
		return nil
	}
	return g.AddVertex(id, "")
}

// AddEdge inserts one edge (gated like AddVertex).
func (g *Graph) AddEdge(src, dst int64, weight float64, etype string, created int64) error {
	return g.e.runGated(context.Background(), func(context.Context) error {
		return g.g.AddEdge(src, dst, weight, etype, created)
	})
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() (int64, error) { return g.g.NumVertices() }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() (int64, error) { return g.g.NumEdges() }

// VertexValues returns every vertex's current value string.
func (g *Graph) VertexValues() (map[int64]string, error) { return g.g.VertexValues() }

// runGated executes a whole graph-algorithm run under the engine's
// cross-session write gate: the run mutates graph tables across many
// statements and supersteps, so it must serialize with other writers
// the way a transaction does — otherwise a concurrent session's write
// could shift vertex rows under the coordinator (or a rollback could
// clobber the run's write-back). The gate is marked on the context so
// nested write statements (a SQL driver's scratch-table DDL) skip the
// per-statement acquisition instead of deadlocking.
func (e *Engine) runGated(ctx context.Context, fn func(ctx context.Context) error) error {
	if engine.GateHeld(ctx) {
		return fn(ctx)
	}
	e.sessionMu.Lock()
	inTxn := e.session.InTransaction()
	e.sessionMu.Unlock()
	if inTxn {
		return fmt.Errorf("vertexica: cannot run a graph algorithm while the default session has an open transaction")
	}
	if err := e.db.AcquireWriteGate(ctx); err != nil {
		return err
	}
	defer e.db.ReleaseWriteGate()
	return fn(engine.WithGateHeld(ctx))
}

// RunProgram executes an arbitrary vertex program. initial (if non-nil)
// resets vertex values first.
func (g *Graph) RunProgram(ctx context.Context, prog VertexProgram, opts Options, initial func(id int64) string) (*RunStats, error) {
	var stats *RunStats
	err := g.e.runGated(ctx, func(ctx context.Context) error {
		if initial != nil {
			if err := g.g.ResetForRun(initial); err != nil {
				return err
			}
		}
		var err error
		stats, err = core.Run(ctx, g.g, prog, opts)
		return err
	})
	return stats, err
}

// --- vertex-centric algorithms (§3.1) ---

// PageRank runs vertex-centric PageRank for the given iterations.
func (g *Graph) PageRank(ctx context.Context, iterations int, opts ...Options) (ranks map[int64]float64, stats *RunStats, err error) {
	err = g.e.runGated(ctx, func(ctx context.Context) error {
		var err error
		ranks, stats, err = algorithms.RunPageRank(ctx, g.g, iterations, optOrDefault(opts))
		return err
	})
	return ranks, stats, err
}

// ShortestPaths runs vertex-centric SSSP from source.
func (g *Graph) ShortestPaths(ctx context.Context, source int64, unitWeights bool, opts ...Options) (dists map[int64]float64, stats *RunStats, err error) {
	err = g.e.runGated(ctx, func(ctx context.Context) error {
		var err error
		dists, stats, err = algorithms.RunSSSP(ctx, g.g, source, unitWeights, optOrDefault(opts))
		return err
	})
	return dists, stats, err
}

// ConnectedComponents labels each vertex with its component's min id.
func (g *Graph) ConnectedComponents(ctx context.Context, opts ...Options) (labels map[int64]int64, stats *RunStats, err error) {
	err = g.e.runGated(ctx, func(ctx context.Context) error {
		var err error
		labels, stats, err = algorithms.RunConnectedComponents(ctx, g.g, optOrDefault(opts))
		return err
	})
	return labels, stats, err
}

// CollaborativeFiltering trains latent vectors on a bipartite rating
// graph and returns them per vertex.
func (g *Graph) CollaborativeFiltering(ctx context.Context, dim, iterations int, opts ...Options) (vecs map[int64][]float64, stats *RunStats, err error) {
	err = g.e.runGated(ctx, func(ctx context.Context) error {
		var err error
		vecs, stats, err = algorithms.RunCollabFilter(ctx, g.g, algorithms.NewCollabFilter(dim, iterations), optOrDefault(opts))
		return err
	})
	return vecs, stats, err
}

// RandomWalkWithRestart computes personalized-PageRank scores from a
// source vertex.
func (g *Graph) RandomWalkWithRestart(ctx context.Context, source int64, iterations int, opts ...Options) (scores map[int64]float64, stats *RunStats, err error) {
	err = g.e.runGated(ctx, func(ctx context.Context) error {
		var err error
		scores, stats, err = algorithms.RunRandomWalkRestart(ctx, g.g, source, iterations, optOrDefault(opts))
		return err
	})
	return scores, stats, err
}

// PredictRating is the collaborative-filtering dot-product predictor.
func PredictRating(vectors map[int64][]float64, user, item int64) (float64, bool) {
	return algorithms.Predict(vectors, user, item)
}

func optOrDefault(opts []Options) Options {
	if len(opts) > 0 {
		return opts[0]
	}
	return Options{}
}

// --- SQL algorithms ("Vertexica (SQL)") ---

// PageRankSQL runs the hand-tuned SQL PageRank. ctx cancels between
// and inside SQL iterations.
func (g *Graph) PageRankSQL(ctx context.Context, iterations int) (ranks map[int64]float64, err error) {
	err = g.e.runGated(ctx, func(ctx context.Context) error {
		var err error
		ranks, err = sqlgraph.PageRank(ctx, g.g, iterations, 0.85)
		return err
	})
	return ranks, err
}

// ShortestPathsSQL runs the SQL SSSP (unreachable vertices absent).
func (g *Graph) ShortestPathsSQL(ctx context.Context, source int64, unitWeights bool) (dists map[int64]float64, err error) {
	err = g.e.runGated(ctx, func(ctx context.Context) error {
		var err error
		dists, err = sqlgraph.ShortestPaths(ctx, g.g, source, unitWeights)
		return err
	})
	return dists, err
}

// ConnectedComponentsSQL runs SQL label propagation.
func (g *Graph) ConnectedComponentsSQL(ctx context.Context) (labels map[int64]int64, err error) {
	err = g.e.runGated(ctx, func(ctx context.Context) error {
		var err error
		labels, err = sqlgraph.ConnectedComponents(ctx, g.g)
		return err
	})
	return labels, err
}

// TriangleCount counts distinct triangles (symmetrized graphs).
func (g *Graph) TriangleCount() (int64, error) { return sqlgraph.TriangleCount(g.g) }

// TriangleCountPerNode counts triangles per vertex.
func (g *Graph) TriangleCountPerNode() (map[int64]int64, error) {
	return sqlgraph.TriangleCountPerNode(g.g)
}

// StrongOverlap finds vertex pairs with >= minCommon shared neighbors.
func (g *Graph) StrongOverlap(minCommon int64) ([]OverlapPair, error) {
	return sqlgraph.StrongOverlap(g.g, minCommon)
}

// WeakTies finds bridge vertices with >= minPairs disconnected
// neighbor pairs.
func (g *Graph) WeakTies(minPairs int64) ([]WeakTie, error) {
	return sqlgraph.WeakTies(g.g, minPairs)
}

// ClusteringCoefficients computes per-vertex local clustering.
func (g *Graph) ClusteringCoefficients() (map[int64]float64, error) {
	return sqlgraph.ClusteringCoefficients(g.g)
}

// GlobalClusteringCoefficient combines triangle counting with wedge
// counting (§4.2.2's "combine triangle counting with weak ties").
func (g *Graph) GlobalClusteringCoefficient() (float64, error) {
	return sqlgraph.GlobalClusteringCoefficient(g.g)
}

// --- hybrid queries (§3.2) ---

// ImportantBridges finds "sufficiently important nodes which act as
// bridges": weak ties with at least minPairs open neighbor pairs whose
// PageRank (iterations rounds) is at least rankThreshold.
func (g *Graph) ImportantBridges(ctx context.Context, minPairs int64, rankThreshold float64, iterations int) ([]WeakTie, error) {
	ranks, _, err := g.PageRank(ctx, iterations)
	if err != nil {
		return nil, err
	}
	ties, err := g.WeakTies(minPairs)
	if err != nil {
		return nil, err
	}
	out := ties[:0]
	for _, t := range ties {
		if ranks[t.ID] >= rankThreshold {
			out = append(out, t)
		}
	}
	return out, nil
}

// ShortestPathsFromMostClustered runs SSSP with the source chosen as
// the vertex with the maximum local clustering coefficient — the §3.2
// hybrid example.
func (g *Graph) ShortestPathsFromMostClustered(ctx context.Context, unitWeights bool) (source int64, dists map[int64]float64, err error) {
	source, _, err = sqlgraph.MostClusteredVertex(g.g)
	if err != nil {
		return 0, nil, err
	}
	dists, _, err = g.ShortestPaths(ctx, source, unitWeights)
	return source, dists, err
}

// NearOrImportant returns vertices that are either within maxDist of
// source or have PageRank >= rankThreshold — the §4.2.2 "very near or
// relatively very important" composition.
func (g *Graph) NearOrImportant(ctx context.Context, source int64, maxDist, rankThreshold float64, iterations int) (map[int64]string, error) {
	dists, _, err := g.ShortestPaths(ctx, source, true)
	if err != nil {
		return nil, err
	}
	ranks, _, err := g.PageRank(ctx, iterations)
	if err != nil {
		return nil, err
	}
	out := make(map[int64]string)
	for id, d := range dists {
		if d <= maxDist {
			out[id] = "near"
		}
	}
	for id, r := range ranks {
		if r >= rankThreshold {
			if _, ok := out[id]; ok {
				out[id] = "near+important"
			} else {
				out[id] = "important"
			}
		}
	}
	return out, nil
}

// String renders a short description of the graph.
func (g *Graph) String() string {
	nv, _ := g.NumVertices()
	ne, _ := g.NumEdges()
	return fmt.Sprintf("graph %s (%d vertices, %d edges)", g.g.Name, nv, ne)
}
