package vertexica

import (
	"context"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/temporal"
)

// Temporal / dynamic analysis facade (§3.3 of the paper).

// Delta is one vertex's score change between two analysis runs.
type Delta = temporal.Delta

// Series is a time-series analysis result.
type Series = temporal.Series

// Snapshot materializes this graph as of a timestamp (edges with
// created <= asOf) under the given name.
func (g *Graph) Snapshot(name string, asOf int64) (*Graph, error) {
	snap, err := temporal.Snapshot(g.g, name, asOf)
	if err != nil {
		return nil, err
	}
	return &Graph{e: g.e, g: snap}, nil
}

// PageRankTimeSeries runs PageRank over snapshots at each timestamp —
// "how has the PageRank of a node changed over the last 5 years".
func (g *Graph) PageRankTimeSeries(ctx context.Context, times []int64, iterations int) (*Series, error) {
	return temporal.TimeSeries(ctx, g.g, times, func(ctx context.Context, cg *core.Graph) (map[int64]float64, error) {
		r, _, err := algorithms.RunPageRank(ctx, cg, iterations, core.Options{})
		return r, err
	})
}

// ShortestPathTimeSeries runs SSSP from source over snapshots — "which
// nodes have come closer in the last one year".
func (g *Graph) ShortestPathTimeSeries(ctx context.Context, times []int64, source int64) (*Series, error) {
	return temporal.TimeSeries(ctx, g.g, times, func(ctx context.Context, cg *core.Graph) (map[int64]float64, error) {
		d, _, err := algorithms.RunSSSP(ctx, cg, source, true, core.Options{})
		return d, err
	})
}

// DiffScores ranks vertices by score change between two runs.
func DiffScores(old, new map[int64]float64) []Delta { return temporal.Diff(old, new) }

// CloserPairs returns vertices whose distance to the (implicit) source
// shrank by at least threshold.
func CloserPairs(oldDist, newDist map[int64]float64, threshold float64) []Delta {
	return temporal.Closer(oldDist, newDist, threshold)
}

// Monitor re-runs an analysis after mutations (continuous mode,
// §4.2.3).
type Monitor struct {
	m *temporal.Monitor
}

// NewPageRankMonitor monitors PageRank on this graph.
func (g *Graph) NewPageRankMonitor(iterations int) *Monitor {
	return &Monitor{m: &temporal.Monitor{
		Graph: g.g,
		Algo: func(ctx context.Context, cg *core.Graph) (map[int64]float64, error) {
			r, _, err := algorithms.RunPageRank(ctx, cg, iterations, core.Options{})
			return r, err
		},
	}}
}

// Run computes current scores.
func (m *Monitor) Run(ctx context.Context) (map[int64]float64, error) { return m.m.Run(ctx) }

// ApplyAndRerun executes mutation SQL and returns the score deltas.
func (m *Monitor) ApplyAndRerun(ctx context.Context, mutations ...string) ([]Delta, error) {
	return m.m.ApplyAndRerun(ctx, mutations...)
}
